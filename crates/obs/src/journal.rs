//! Bounded lock-free event journal: the live half of the telemetry plane.
//!
//! A [`Journal`] is a fixed-capacity multi-producer ring of structured
//! [`Event`]s. Producers (solver recovery, checkpoint store, degradation
//! ladder, the job server) publish with a CAS claim plus one release
//! store — no locks, no allocation, and when the ring is full the event
//! is **dropped and counted** instead of blocking the hot path. A single
//! consumer (the scrape/export side) drains in ring order; every event
//! carries the ring sequence number it was claimed at, so batches drained
//! at different times [`merge_drained`] back into one deterministic
//! stream.
//!
//! Events serialize under the stable `landau-obs-events/1` schema
//! ([`EVENTS_SCHEMA`]): a versioned envelope with the drop counter and a
//! flat array of typed records. [`events_to_json`] / [`parse_events`]
//! round-trip exactly.
//!
//! Publishing is runtime-switchable ([`Journal::set_enabled`]); a
//! disabled journal costs one relaxed atomic load per publish and records
//! nothing, which is what the `obs.journal_overhead_frac` bench gate
//! measures against.

use crate::json::{num_u64, Json};
use crate::span::trace_ctx;
use std::borrow::Cow;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Stable schema identifier for the journal's JSON envelope.
pub const EVENTS_SCHEMA: &str = "landau-obs-events/1";

/// Default capacity of the process-global journal (events).
pub const GLOBAL_JOURNAL_CAPACITY: usize = 4096;

/// What happened. The set is closed and versioned with the schema: adding
/// a kind is a schema revision, not a free-form string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A job was admitted into the server.
    JobSubmitted,
    /// A terminal job was re-spawned from its newest checkpoint.
    JobResumed,
    /// A scheduler-granted budgeted slice began.
    SliceStart,
    /// A budgeted slice finished (value = wall milliseconds).
    SliceEnd,
    /// A job reached `Completed` (value = completed driver steps).
    JobCompleted,
    /// A job reached `Cancelled` (value = completed driver steps).
    JobCancelled,
    /// A job reached `Failed` (value = completed driver steps).
    JobFailed,
    /// The recovery layer retried a step (value = attempts burned).
    Recovery,
    /// The degradation ladder moved a lane down a rung (`code` = rung).
    Degrade,
    /// A checkpoint generation was durably written (step = generation,
    /// value = frame bytes).
    CheckpointWrite,
    /// A checkpoint generation was validated and restored (step =
    /// generation, value = payload bytes).
    CheckpointLoad,
    /// An SLO watchdog rule breached (`code` = rule, value = observed).
    Alert,
}

impl EventKind {
    /// The schema's wire name for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::JobSubmitted => "job_submitted",
            EventKind::JobResumed => "job_resumed",
            EventKind::SliceStart => "slice_start",
            EventKind::SliceEnd => "slice_end",
            EventKind::JobCompleted => "job_completed",
            EventKind::JobCancelled => "job_cancelled",
            EventKind::JobFailed => "job_failed",
            EventKind::Recovery => "recovery",
            EventKind::Degrade => "degrade",
            EventKind::CheckpointWrite => "ckpt_write",
            EventKind::CheckpointLoad => "ckpt_load",
            EventKind::Alert => "alert",
        }
    }

    /// Parse a wire name back to the kind.
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "job_submitted" => EventKind::JobSubmitted,
            "job_resumed" => EventKind::JobResumed,
            "slice_start" => EventKind::SliceStart,
            "slice_end" => EventKind::SliceEnd,
            "job_completed" => EventKind::JobCompleted,
            "job_cancelled" => EventKind::JobCancelled,
            "job_failed" => EventKind::JobFailed,
            "recovery" => EventKind::Recovery,
            "degrade" => EventKind::Degrade,
            "ckpt_write" => EventKind::CheckpointWrite,
            "ckpt_load" => EventKind::CheckpointLoad,
            "alert" => EventKind::Alert,
            _ => return None,
        })
    }
}

/// One structured journal record. Constructed only through the typed
/// constructors below (lint E010): the hot-path fields are plain scalars,
/// `code` is a static label and `tenant` an `Arc` clone, so publishing
/// never allocates.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Ring position the publish claimed — the global merge key.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// Job id (0 when not job-scoped). Filled from the thread's
    /// [`crate::TraceCtx`] when one is installed and the constructor was
    /// not given an explicit id.
    pub job: u64,
    /// Slice index within the job (from the trace context).
    pub slice: u64,
    /// Kind-specific ordinal (driver step, checkpoint generation, …).
    pub step: u64,
    /// Kind-specific measurement (milliseconds, bytes, attempts, …).
    pub value: f64,
    /// Static detail label (fault site, ladder rung, alert rule).
    pub code: Cow<'static, str>,
    /// Owning tenant, when job-scoped.
    pub tenant: Option<Arc<str>>,
}

impl Event {
    /// Base record: job/tenant/slice from the installed trace context.
    fn scoped(kind: EventKind) -> Event {
        let ctx = trace_ctx();
        Event {
            seq: 0,
            kind,
            job: ctx.as_ref().map_or(0, |c| c.job),
            slice: ctx.as_ref().map_or(0, |c| c.slice),
            step: 0,
            value: 0.0,
            code: Cow::Borrowed(""),
            tenant: ctx.map(|c| c.tenant),
        }
    }

    fn for_job(kind: EventKind, job: u64, tenant: &Arc<str>) -> Event {
        Event {
            job,
            tenant: Some(tenant.clone()),
            ..Event::scoped(kind)
        }
    }

    /// A job was admitted.
    pub fn job_submitted(job: u64, tenant: &Arc<str>) -> Event {
        Event::for_job(EventKind::JobSubmitted, job, tenant)
    }

    /// A terminal job was resumed from its checkpoint.
    pub fn job_resumed(job: u64, tenant: &Arc<str>) -> Event {
        Event::for_job(EventKind::JobResumed, job, tenant)
    }

    /// A budgeted slice began.
    pub fn slice_start(job: u64, tenant: &Arc<str>, slice: u64) -> Event {
        Event {
            slice,
            ..Event::for_job(EventKind::SliceStart, job, tenant)
        }
    }

    /// A budgeted slice ended after `ms` wall milliseconds, leaving the
    /// driver at `step` completed steps.
    pub fn slice_end(job: u64, tenant: &Arc<str>, slice: u64, step: u64, ms: f64) -> Event {
        Event {
            slice,
            step,
            value: ms,
            ..Event::for_job(EventKind::SliceEnd, job, tenant)
        }
    }

    /// A job reached a terminal state with `steps` completed driver steps.
    /// `kind` must be one of the three terminal kinds.
    pub fn job_terminal(kind: EventKind, job: u64, tenant: &Arc<str>, steps: u64) -> Event {
        debug_assert!(matches!(
            kind,
            EventKind::JobCompleted | EventKind::JobCancelled | EventKind::JobFailed
        ));
        Event {
            step: steps,
            ..Event::for_job(kind, job, tenant)
        }
    }

    /// The recovery layer burned `attempts` retries at `site`.
    pub fn recovery(site: &'static str, attempts: u64) -> Event {
        Event {
            value: attempts as f64,
            code: Cow::Borrowed(site),
            ..Event::scoped(EventKind::Recovery)
        }
    }

    /// The degradation ladder moved lane `lane` down to `rung`.
    pub fn degrade(rung: &'static str, lane: u64) -> Event {
        Event {
            step: lane,
            code: Cow::Borrowed(rung),
            ..Event::scoped(EventKind::Degrade)
        }
    }

    /// Checkpoint `generation` written as a `bytes`-byte frame.
    pub fn checkpoint_write(generation: u64, bytes: u64) -> Event {
        Event {
            step: generation,
            value: bytes as f64,
            ..Event::scoped(EventKind::CheckpointWrite)
        }
    }

    /// Checkpoint `generation` validated and restored (`bytes` payload).
    pub fn checkpoint_load(generation: u64, bytes: u64) -> Event {
        Event {
            step: generation,
            value: bytes as f64,
            ..Event::scoped(EventKind::CheckpointLoad)
        }
    }

    /// SLO rule `rule` breached with `observed` against `threshold`.
    pub fn alert(rule: &'static str, observed: f64, threshold: f64) -> Event {
        Event {
            step: threshold.abs().ceil() as u64,
            value: observed,
            code: Cow::Borrowed(rule),
            ..Event::scoped(EventKind::Alert)
        }
    }
}

/// One ring slot: a Vyukov-style sequence gate plus the payload cell.
struct Slot {
    /// Publication state: `pos` = free for the producer claiming `pos`,
    /// `pos + 1` = holds the event published at `pos`, `pos + capacity`
    /// = drained and free for the next lap.
    seq: AtomicU64,
    value: UnsafeCell<Option<Event>>,
}

// SAFETY: a slot's `value` cell is accessed exclusively by whichever
// thread the `seq` protocol currently grants ownership to — the producer
// that CAS-claimed the position (between its claim and its release store)
// or the single drain holder (between observing the release store and its
// own release store). The atomics order those accesses, so sharing the
// cell across threads is sound.
unsafe impl Sync for Slot {}

/// Bounded, lock-free MPSC ring of journal events.
///
/// Producers never block and never allocate: a full ring drops the event
/// and increments [`Journal::dropped`]. Drains are serialized internally
/// (single-consumer discipline enforced by a mutex that producers never
/// touch) and return events in ring order.
pub struct Journal {
    enabled: AtomicBool,
    mask: u64,
    tail: AtomicU64,
    slots: Box<[Slot]>,
    dropped: AtomicU64,
    /// Drain cursor; the mutex is the single-consumer discipline.
    head: Mutex<u64>,
}

static GLOBAL: OnceLock<Arc<Journal>> = OnceLock::new();

impl Journal {
    /// A journal holding up to `capacity` undrained events (rounded up to
    /// a power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Journal {
        let cap = capacity.next_power_of_two().max(2);
        Journal {
            enabled: AtomicBool::new(true),
            mask: (cap - 1) as u64,
            tail: AtomicU64::new(0),
            slots: (0..cap)
                .map(|i| Slot {
                    seq: AtomicU64::new(i as u64),
                    value: UnsafeCell::new(None),
                })
                .collect(),
            dropped: AtomicU64::new(0),
            head: Mutex::new(0),
        }
    }

    /// The process-wide default journal (sink for components that were
    /// not handed an explicit one).
    pub fn global() -> &'static Journal {
        Journal::global_arc();
        GLOBAL.get().expect("initialized above")
    }

    /// Shared handle to the process-wide default journal.
    pub fn global_arc() -> Arc<Journal> {
        GLOBAL
            .get_or_init(|| Arc::new(Journal::with_capacity(GLOBAL_JOURNAL_CAPACITY)))
            .clone()
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Turn publishing on or off. Off costs one relaxed load per publish.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// True when publishes are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Events accepted so far (monotonic; also the next sequence number).
    pub fn published(&self) -> u64 {
        self.tail.load(Ordering::Relaxed)
    }

    /// Events dropped on a full ring so far (monotonic).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Publish `ev`. Returns `false` iff the event was dropped because
    /// the ring is full (the drop counter has already been bumped).
    /// Never blocks; a disabled journal accepts and discards.
    pub fn publish(&self, mut ev: Event) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return true;
        }
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        ev.seq = pos;
                        // SAFETY: the successful CAS above granted this
                        // thread exclusive ownership of slot `pos`; no
                        // other producer can claim it until the release
                        // store below, and the consumer only reads after
                        // observing that store.
                        unsafe { *slot.value.get() = Some(ev) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(current) => pos = current,
                }
            } else if seq < pos {
                // A full lap behind: the slot still holds an undrained
                // event. Drop-and-count instead of blocking the producer.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer claimed `pos` between our loads.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Drain every published event, in ring order. Single-consumer:
    /// concurrent drains serialize, and each event is delivered exactly
    /// once across all drains.
    pub fn drain(&self) -> Vec<Event> {
        let mut head = self.head.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        loop {
            let slot = &self.slots[(*head & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != *head + 1 {
                return out;
            }
            // SAFETY: seq == head + 1 means the publishing producer's
            // release store has made the payload visible, and the head
            // mutex makes this thread the only consumer; the slot is ours
            // until the release store below recycles it.
            let ev = unsafe { (*slot.value.get()).take() };
            slot.seq
                .store(*head + self.slots.len() as u64, Ordering::Release);
            *head += 1;
            if let Some(ev) = ev {
                out.push(ev);
            }
        }
    }
}

/// Merge independently drained batches back into one stream, ordered by
/// publish sequence. Deterministic: the result depends only on the set of
/// events, not on how they were batched.
pub fn merge_drained(batches: Vec<Vec<Event>>) -> Vec<Event> {
    let mut all: Vec<Event> = batches.into_iter().flatten().collect();
    all.sort_by_key(|e| e.seq);
    all
}

/// Render events (plus the drop counter) as a `landau-obs-events/1`
/// document.
pub fn events_to_json(events: &[Event], dropped: u64) -> Json {
    let rows = events
        .iter()
        .map(|e| {
            let mut fields = vec![
                ("seq".to_string(), num_u64(e.seq)),
                ("kind".to_string(), Json::Str(e.kind.as_str().to_string())),
                ("job".to_string(), num_u64(e.job)),
                ("slice".to_string(), num_u64(e.slice)),
                ("step".to_string(), num_u64(e.step)),
                ("value".to_string(), Json::Num(e.value)),
                ("code".to_string(), Json::Str(e.code.to_string())),
            ];
            if let Some(t) = &e.tenant {
                fields.push(("tenant".to_string(), Json::Str(t.to_string())));
            }
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        ("schema".to_string(), Json::Str(EVENTS_SCHEMA.to_string())),
        ("dropped".to_string(), num_u64(dropped)),
        ("events".to_string(), Json::Arr(rows)),
    ])
}

/// Parse a `landau-obs-events/1` document back into `(events, dropped)`.
pub fn parse_events(text: &str) -> Result<(Vec<Event>, u64), String> {
    let doc = Json::parse(text).map_err(|e| format!("events json: {e:?}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(EVENTS_SCHEMA) => {}
        other => return Err(format!("unsupported events schema {other:?}")),
    }
    let dropped = doc
        .get("dropped")
        .and_then(Json::as_u64)
        .ok_or("missing dropped counter")?;
    let rows = doc
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing events array")?;
    let mut events = Vec::with_capacity(rows.len());
    for row in rows {
        let str_field = |k: &str| row.get(k).and_then(Json::as_str).map(str::to_string);
        let u64_field = |k: &str| row.get(k).and_then(Json::as_u64).ok_or(format!("bad {k}"));
        let kind = str_field("kind")
            .and_then(|s| EventKind::parse(&s))
            .ok_or("bad kind")?;
        events.push(Event {
            seq: u64_field("seq")?,
            kind,
            job: u64_field("job")?,
            slice: u64_field("slice")?,
            step: u64_field("step")?,
            value: row.get("value").and_then(Json::as_f64).ok_or("bad value")?,
            code: Cow::Owned(str_field("code").ok_or("bad code")?),
            tenant: str_field("tenant").map(Arc::from),
        });
    }
    Ok((events, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(name: &str) -> Arc<str> {
        Arc::from(name)
    }

    #[test]
    fn publish_drain_round_trip_in_order() {
        let j = Journal::with_capacity(8);
        for i in 0..5 {
            assert!(j.publish(Event::job_submitted(i, &tenant("t"))));
        }
        let evs = j.drain();
        assert_eq!(evs.len(), 5);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.job, i as u64);
        }
        assert_eq!(j.dropped(), 0);
        assert!(j.drain().is_empty(), "second drain must be empty");
    }

    #[test]
    fn overflow_drops_and_counts_exactly() {
        let j = Journal::with_capacity(4);
        let mut accepted = 0;
        for i in 0..11 {
            if j.publish(Event::job_submitted(i, &tenant("t"))) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4);
        assert_eq!(j.dropped(), 7);
        assert_eq!(j.drain().len(), 4);
        // Drained slots are reusable; the drop counter is monotonic.
        assert!(j.publish(Event::job_submitted(99, &tenant("t"))));
        assert_eq!(j.dropped(), 7);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let j = Journal::with_capacity(8);
        j.set_enabled(false);
        assert!(j.publish(Event::recovery("site", 1)));
        assert_eq!(j.published(), 0);
        assert!(j.drain().is_empty());
        j.set_enabled(true);
        assert!(j.publish(Event::recovery("site", 1)));
        assert_eq!(j.drain().len(), 1);
    }

    #[test]
    fn merge_drained_is_batching_independent() {
        let j = Journal::with_capacity(16);
        for i in 0..6 {
            j.publish(Event::degrade("host", i));
        }
        let a = j.drain();
        for i in 6..10 {
            j.publish(Event::degrade("host", i));
        }
        let b = j.drain();
        let merged = merge_drained(vec![b, a]);
        let seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn schema_round_trips() {
        let j = Journal::with_capacity(16);
        j.publish(Event::job_submitted(3, &tenant("acme")));
        j.publish(Event::slice_end(3, &tenant("acme"), 2, 7, 12.5));
        j.publish(Event::checkpoint_write(1, 4096));
        j.publish(Event::alert("slice_p99", 900.0, 500.0));
        // Overflow a tiny sibling so dropped is nonzero in the envelope.
        let evs = j.drain();
        let text = events_to_json(&evs, 5).to_text();
        let (back, dropped) = parse_events(&text).expect("parse back");
        assert_eq!(dropped, 5);
        assert_eq!(back, evs);
        // Re-render is byte-identical (stable field order).
        assert_eq!(events_to_json(&back, dropped).to_text(), text);
    }

    #[test]
    fn concurrent_producers_keep_per_producer_order() {
        let j = Arc::new(Journal::with_capacity(4096));
        let producers = 4;
        let per = 250;
        std::thread::scope(|s| {
            for p in 0..producers {
                let j = j.clone();
                s.spawn(move || {
                    let t = tenant("t");
                    for i in 0..per {
                        j.publish(Event::slice_start(p, &t, i));
                    }
                });
            }
        });
        let evs = j.drain();
        assert_eq!(evs.len(), (producers * per) as usize);
        assert_eq!(j.dropped(), 0);
        // Ring order is globally strict...
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        // ...and each producer's events appear in its own publish order.
        for p in 0..producers {
            let slices: Vec<u64> = evs.iter().filter(|e| e.job == p).map(|e| e.slice).collect();
            assert_eq!(slices, (0..per).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn concurrent_overflow_accounting_is_exact() {
        let j = Arc::new(Journal::with_capacity(64));
        let producers = 8;
        let per = 100u64;
        std::thread::scope(|s| {
            for p in 0..producers {
                let j = j.clone();
                s.spawn(move || {
                    let t = tenant("t");
                    for i in 0..per {
                        j.publish(Event::slice_start(p, &t, i));
                    }
                });
            }
        });
        let drained = j.drain().len() as u64;
        assert_eq!(drained, j.published());
        assert_eq!(j.published() + j.dropped(), producers * per);
    }
}
