//! SLO watchdog: burn-rate rules over live metric snapshots.
//!
//! An [`SloWatchdog`] owns a set of [`SloRule`]s, each binding a signal
//! (counter burn rate since the previous evaluation, gauge level, or
//! histogram p99) to a threshold. [`SloWatchdog::evaluate`] reads one
//! [`MetricSnapshot`], publishes `alert.<rule>.observed` gauges and
//! `alert.<rule>.breaches` counters back into the registry (the breach
//! counters are pre-registered so every scrape exposes the `alert.*`
//! families even when nothing has fired), pushes a journal
//! [`Event::alert`] per breach, and returns the breaches.
//!
//! Modes mirror the physics-side `ConservationMonitor`:
//! [`AlertMode::Record`] only publishes, [`AlertMode::Fail`] makes
//! [`SloWatchdog::enforce`] return [`SloViolation`] — the operational
//! analogue of `WatchdogMode::Fail` turning drift into a step error.

use crate::journal::{Event, Journal};
use crate::metrics::{MetricRegistry, MetricSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// What a rule measures in a snapshot.
#[derive(Clone, Debug)]
pub enum SloSignal {
    /// Increase of a counter since the previous evaluation of this
    /// watchdog (0 on the first evaluation).
    CounterBurn(&'static str),
    /// Current level of a gauge (absent gauge ⇒ 0, never fires).
    Gauge(&'static str),
    /// Maximum level over all gauges whose name starts with `prefix`
    /// and ends with `suffix` (e.g. the `invariant.*.drift_max` family).
    GaugeFamilyMax {
        /// Name prefix, e.g. `"invariant."`.
        prefix: &'static str,
        /// Name suffix, e.g. `".drift_max"`.
        suffix: &'static str,
    },
    /// Interpolated p99 of a histogram.
    HistogramP99(&'static str),
}

/// One SLO rule: `signal > threshold` is a breach.
#[derive(Clone, Debug)]
pub struct SloRule {
    /// Stable rule name — becomes the `alert.<name>.*` metric family
    /// and the journal event code.
    pub name: &'static str,
    /// What to measure.
    pub signal: SloSignal,
    /// Fire when the observation exceeds this.
    pub threshold: f64,
}

/// Record-only or hard-fail, mirroring `WatchdogMode`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertMode {
    /// Publish `alert.*` metrics and journal events, keep serving.
    Record,
    /// Additionally make [`SloWatchdog::enforce`] return the breaches
    /// as an error, for deployments that would rather stop than limp.
    Fail,
}

/// One rule breach from a single evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct Firing {
    /// Breached rule name.
    pub rule: &'static str,
    /// Observed value.
    pub observed: f64,
    /// The rule's threshold.
    pub threshold: f64,
}

/// Error returned by [`SloWatchdog::enforce`] in [`AlertMode::Fail`].
#[derive(Clone, Debug)]
pub struct SloViolation {
    /// Every rule that breached in the failing evaluation.
    pub firings: Vec<Firing>,
}

impl std::fmt::Display for SloViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SLO violated:")?;
        for fr in &self.firings {
            write!(f, " {} ({:.3} > {:.3})", fr.rule, fr.observed, fr.threshold)?;
        }
        Ok(())
    }
}

impl std::error::Error for SloViolation {}

/// Burn-rate SLO watchdog over a [`MetricRegistry`].
pub struct SloWatchdog {
    mode: AlertMode,
    rules: Vec<SloRule>,
    registry: Arc<MetricRegistry>,
    journal: Arc<Journal>,
    /// Previous counter values for [`SloSignal::CounterBurn`].
    last: Mutex<BTreeMap<&'static str, u64>>,
}

impl SloWatchdog {
    /// A watchdog over `registry`/`journal` with the given rules.
    pub fn new(
        mode: AlertMode,
        rules: Vec<SloRule>,
        registry: Arc<MetricRegistry>,
        journal: Arc<Journal>,
    ) -> SloWatchdog {
        // Pre-register the alert families so a scrape taken before the
        // first breach (or before the first evaluation) still exposes
        // them — probes key off their presence.
        for r in &rules {
            let _ = registry.counter(&format!("alert.{}.breaches", r.name));
            registry.gauge_max(&format!("alert.{}.observed", r.name), 0.0);
        }
        let _ = registry.counter("alert.evaluations");
        SloWatchdog {
            mode,
            rules,
            registry,
            journal,
            last: Mutex::new(BTreeMap::new()),
        }
    }

    /// The watchdog's mode.
    pub fn mode(&self) -> AlertMode {
        self.mode
    }

    /// The default serve rule set: latency, queue, degradation,
    /// checkpoint-corruption, journal-loss, and invariant-drift SLOs.
    /// Thresholds are generous — they catch a service on fire, not a
    /// slow day.
    pub fn serve_rules() -> Vec<SloRule> {
        vec![
            SloRule {
                name: "slice_p99_ms",
                signal: SloSignal::HistogramP99("serve.slice_ms"),
                threshold: 120_000.0,
            },
            SloRule {
                name: "queue_wait_p99_ms",
                signal: SloSignal::HistogramP99("serve.queue_wait_ms"),
                threshold: 300_000.0,
            },
            SloRule {
                name: "degrade_burn",
                signal: SloSignal::CounterBurn("degrade.demotions"),
                threshold: 64.0,
            },
            SloRule {
                name: "ckpt_corruption",
                signal: SloSignal::CounterBurn("ckpt.corrupt_skipped"),
                threshold: 0.5,
            },
            SloRule {
                name: "journal_loss_burn",
                signal: SloSignal::CounterBurn("obs.journal.dropped"),
                threshold: 4096.0,
            },
            SloRule {
                name: "invariant_drift",
                signal: SloSignal::GaugeFamilyMax {
                    prefix: "invariant.",
                    suffix: ".drift_max",
                },
                threshold: 1e-6,
            },
        ]
    }

    fn observe(&self, signal: &SloSignal, snap: &MetricSnapshot) -> f64 {
        match *signal {
            SloSignal::CounterBurn(name) => {
                let now = snap.counter(name);
                let mut last = self.last.lock().unwrap_or_else(|e| e.into_inner());
                let prev = last.insert(name, now);
                match prev {
                    Some(p) => now.saturating_sub(p) as f64,
                    // First evaluation: no interval to burn over yet.
                    None => 0.0,
                }
            }
            SloSignal::Gauge(name) => snap.gauge(name).unwrap_or(0.0),
            SloSignal::GaugeFamilyMax { prefix, suffix } => snap
                .gauges
                .iter()
                .filter(|(k, _)| k.starts_with(prefix) && k.ends_with(suffix))
                .map(|(_, &v)| v)
                .fold(0.0, f64::max),
            SloSignal::HistogramP99(name) => snap
                .histograms
                .get(name)
                .map(|h| h.quantiles(&[0.99])[0])
                .unwrap_or(0.0),
        }
    }

    /// Evaluate every rule against `snap`, publish `alert.*` metrics and
    /// journal events, and return the breaches. Never fails — this is
    /// the scrape-path entry point regardless of mode.
    pub fn evaluate(&self, snap: &MetricSnapshot) -> Vec<Firing> {
        self.registry.add("alert.evaluations", 1);
        let mut firings = Vec::new();
        for rule in &self.rules {
            let observed = self.observe(&rule.signal, snap);
            self.registry
                .gauge_max(&format!("alert.{}.observed", rule.name), observed);
            if observed > rule.threshold {
                self.registry
                    .add(&format!("alert.{}.breaches", rule.name), 1);
                self.journal
                    .publish(Event::alert(rule.name, observed, rule.threshold));
                firings.push(Firing {
                    rule: rule.name,
                    observed,
                    threshold: rule.threshold,
                });
            }
        }
        firings
    }

    /// Evaluate and, in [`AlertMode::Fail`], turn breaches into an
    /// error. [`AlertMode::Record`] always returns `Ok`.
    pub fn enforce(&self, snap: &MetricSnapshot) -> Result<Vec<Firing>, SloViolation> {
        let firings = self.evaluate(snap);
        if self.mode == AlertMode::Fail && !firings.is_empty() {
            return Err(SloViolation { firings });
        }
        Ok(firings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn watchdog(mode: AlertMode, rules: Vec<SloRule>) -> (SloWatchdog, Arc<MetricRegistry>) {
        let reg = Arc::new(MetricRegistry::new());
        let journal = Arc::new(Journal::with_capacity(64));
        (SloWatchdog::new(mode, rules, reg.clone(), journal), reg)
    }

    #[test]
    fn burn_rate_is_delta_between_evaluations() {
        let (wd, reg) = watchdog(
            AlertMode::Record,
            vec![SloRule {
                name: "burn",
                signal: SloSignal::CounterBurn("work.units"),
                threshold: 5.0,
            }],
        );
        reg.add("work.units", 100);
        // First evaluation establishes the baseline — no breach even
        // though the absolute count is large.
        assert!(wd.evaluate(&reg.snapshot()).is_empty());
        reg.add("work.units", 3);
        assert!(wd.evaluate(&reg.snapshot()).is_empty());
        reg.add("work.units", 50);
        let firings = wd.evaluate(&reg.snapshot());
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].rule, "burn");
        assert_eq!(firings[0].observed, 50.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("alert.burn.breaches"), 1);
        assert_eq!(snap.counter("alert.evaluations"), 3);
        assert!(snap.gauge("alert.burn.observed").unwrap() >= 50.0);
    }

    #[test]
    fn alert_families_exist_before_any_breach() {
        let (wd, reg) = watchdog(AlertMode::Record, SloWatchdog::serve_rules());
        let snap = reg.snapshot();
        assert_eq!(snap.counter("alert.slice_p99_ms.breaches"), 0);
        assert!(snap.counters.contains_key("alert.invariant_drift.breaches"));
        assert!(wd.evaluate(&snap).is_empty());
    }

    #[test]
    fn gauge_family_max_spans_the_invariant_channels() {
        let (wd, reg) = watchdog(
            AlertMode::Record,
            vec![SloRule {
                name: "drift",
                signal: SloSignal::GaugeFamilyMax {
                    prefix: "invariant.",
                    suffix: ".drift_max",
                },
                threshold: 1e-6,
            }],
        );
        reg.gauge_max("invariant.mass.drift_max", 1e-9);
        reg.gauge_max("invariant.energy.drift_max", 3e-4);
        reg.gauge_max("invariant.entropy.production_drop_max", 1.0);
        let firings = wd.evaluate(&reg.snapshot());
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].observed, 3e-4);
    }

    #[test]
    fn fail_mode_turns_breaches_into_errors() {
        let (wd, reg) = watchdog(
            AlertMode::Fail,
            vec![SloRule {
                name: "p99",
                signal: SloSignal::HistogramP99("lat"),
                threshold: 10.0,
            }],
        );
        reg.observe("lat", 2);
        assert!(wd.enforce(&reg.snapshot()).is_ok());
        for _ in 0..100 {
            reg.observe("lat", 5000);
        }
        let err = wd.enforce(&reg.snapshot()).expect_err("p99 breached");
        assert_eq!(err.firings[0].rule, "p99");
        assert!(err.to_string().contains("p99"));
    }

    #[test]
    fn breaches_land_in_the_journal() {
        let reg = Arc::new(MetricRegistry::new());
        let journal = Arc::new(Journal::with_capacity(64));
        let wd = SloWatchdog::new(
            AlertMode::Record,
            vec![SloRule {
                name: "g",
                signal: SloSignal::Gauge("depth"),
                threshold: 1.0,
            }],
            reg.clone(),
            journal.clone(),
        );
        reg.gauge_set("depth", 9.0);
        wd.evaluate(&reg.snapshot());
        let evs = journal.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, crate::journal::EventKind::Alert);
        assert_eq!(evs[0].code.as_ref(), "g");
        assert_eq!(evs[0].value, 9.0);
    }
}
