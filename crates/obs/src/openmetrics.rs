//! OpenMetrics text rendering for [`MetricSnapshot`]s.
//!
//! [`render`] turns one snapshot into a self-contained OpenMetrics
//! exposition: counters (`_total`), gauges, and histograms with
//! cumulative `le` buckets at the log₂ bucket upper edges plus derived
//! `_p50`/`_p99` gauges from [`HistogramSnapshot::quantiles`]. Because
//! everything is computed from a single snapshot, the exposition is
//! internally consistent — the quantiles describe exactly the buckets
//! printed next to them, even while the live registry keeps moving.
//!
//! Metric names are sanitized (`.` and `-` become `_`) and families are
//! emitted in sorted order, so output is deterministic for a given
//! snapshot. [`validate`] is the matching structural checker used by the
//! scrape probes: every sample line must parse, belong to a declared
//! family, and the document must end with `# EOF`.

use crate::metrics::MetricSnapshot;
use std::fmt::Write as _;

/// Sanitize a workspace metric name (`serve.slice_ms`) into an
/// OpenMetrics name (`serve_slice_ms`).
pub fn metric_name(raw: &str) -> String {
    raw.chars()
        .map(|c| match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' => c,
            _ => '_',
        })
        .collect()
}

fn write_f64(v: f64, out: &mut String) {
    if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Render `snap` as OpenMetrics text (ends with `# EOF`).
pub fn render(snap: &MetricSnapshot) -> String {
    let mut out = String::new();
    for (name, &v) in &snap.counters {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n}_total {v}");
    }
    for (name, &v) in &snap.gauges {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = write!(out, "{n} ");
        write_f64(v, &mut out);
        out.push('\n');
    }
    for (name, h) in &snap.histograms {
        let n = metric_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (&b, &count) in &h.buckets {
            cum += count;
            // Bucket b's upper edge: 0 for b = 0, else 2^b - 1.
            let le = if b == 0 { 0u64 } else { (1u64 << b) - 1 };
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
        // Derived quantiles from the same snapshot (one pass, monotone).
        let qs = h.quantiles(&[0.5, 0.99]);
        for (suffix, est) in [("p50", qs[0]), ("p99", qs[1])] {
            let _ = writeln!(out, "# TYPE {n}_{suffix} gauge");
            let _ = write!(out, "{n}_{suffix} ");
            write_f64(est, &mut out);
            out.push('\n');
        }
    }
    out.push_str("# EOF\n");
    out
}

fn is_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Sample-name suffixes a `# TYPE family <kind>` declaration legitimizes.
fn family_of(sample: &str) -> Vec<String> {
    let mut fams = vec![sample.to_string()];
    for suffix in ["_total", "_bucket", "_sum", "_count"] {
        if let Some(base) = sample.strip_suffix(suffix) {
            fams.push(base.to_string());
        }
    }
    fams
}

/// Structural validation of an OpenMetrics exposition: every sample line
/// parses as `name[{labels}] value`, belongs to a family declared by a
/// preceding `# TYPE` line, and the document ends with `# EOF`.
pub fn validate(text: &str) -> Result<(), String> {
    let mut families: Vec<String> = Vec::new();
    let mut saw_eof = false;
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        if saw_eof {
            return Err(format!("line {ln}: content after # EOF"));
        }
        if line == "# EOF" {
            saw_eof = true;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let fam = parts.next().unwrap_or("");
            let kind = parts.next().unwrap_or("");
            if !is_name(fam)
                || !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "unknown"
                )
                || parts.next().is_some()
            {
                return Err(format!("line {ln}: malformed TYPE line"));
            }
            families.push(fam.to_string());
            continue;
        }
        if line.starts_with("# HELP ") || line.starts_with("# UNIT ") {
            continue;
        }
        // Sample line: name, optional {labels}, space, float value.
        let (name_part, value_part) = match line.find(' ') {
            Some(sp) => (&line[..sp], &line[sp + 1..]),
            None => return Err(format!("line {ln}: no sample value")),
        };
        let name = match name_part.find('{') {
            Some(b) => {
                if !name_part.ends_with('}') {
                    return Err(format!("line {ln}: unterminated label set"));
                }
                &name_part[..b]
            }
            None => name_part,
        };
        if !is_name(name) {
            return Err(format!("line {ln}: bad metric name {name:?}"));
        }
        if value_part.trim().parse::<f64>().is_err() {
            return Err(format!("line {ln}: bad sample value {value_part:?}"));
        }
        if !family_of(name).iter().any(|f| families.contains(f)) {
            return Err(format!(
                "line {ln}: sample {name:?} has no TYPE declaration"
            ));
        }
    }
    if !saw_eof {
        return Err("missing # EOF terminator".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricRegistry;

    #[test]
    fn renders_valid_openmetrics_for_all_metric_kinds() {
        let reg = MetricRegistry::new();
        reg.add("serve.slices", 3);
        reg.gauge_set("serve.jobs_in_flight", 2.0);
        for v in [1u64, 3, 9, 200] {
            reg.observe("serve.slice_ms", v);
        }
        let text = render(&reg.snapshot());
        validate(&text).expect("rendered text validates");
        assert!(text.contains("serve_slices_total 3"));
        assert!(text.contains("serve_jobs_in_flight 2"));
        assert!(text.contains("serve_slice_ms_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("serve_slice_ms_sum 213"));
        assert!(text.contains("serve_slice_ms_p99 "));
        assert!(text.ends_with("# EOF\n"));
        // Deterministic: same snapshot, same bytes.
        assert_eq!(text, render(&reg.snapshot()));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = MetricRegistry::new();
        for v in [1u64, 1, 2, 5] {
            reg.observe("h", v);
        }
        let text = render(&reg.snapshot());
        assert!(text.contains("h_bucket{le=\"1\"} 2"));
        assert!(text.contains("h_bucket{le=\"3\"} 3"));
        assert!(text.contains("h_bucket{le=\"7\"} 4"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 4"));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("").is_err(), "missing EOF");
        assert!(validate("x_total 1\n# EOF\n").is_err(), "undeclared family");
        assert!(
            validate("# TYPE x counter\nx_total nope\n# EOF\n").is_err(),
            "bad value"
        );
        assert!(
            validate("# TYPE x counter\nx_total 1\n# EOF\nmore\n").is_err(),
            "content after EOF"
        );
        assert!(validate("# TYPE x counter\nx_total 1\n# EOF\n").is_ok());
    }
}
