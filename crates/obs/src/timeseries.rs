//! Step-level physics timeseries: an append-only record sink with a
//! stable schema ([`TIMESERIES_SCHEMA`]).
//!
//! Each [`Record`] is one time step — step index, simulation time, Δt,
//! and a sorted map of named `f64` channels (per-species channels use a
//! `name.s<idx>` suffix, see [`Record::set_species`]). A [`TimeSeries`]
//! keeps records sorted by step index and merges record-wise, so
//! snapshots from different producers fold associatively just like
//! [`crate::MetricRegistry`] snapshots. [`SeriesSink`] is the shared
//! (thread-safe, injectable or process-global) collection point the
//! solver and drivers publish into.
//!
//! Unlike spans, the timeseries is pure data — it exists and records in
//! every build configuration, including `--no-default-features`.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Schema identifier written into every exported timeseries document.
pub const TIMESERIES_SCHEMA: &str = "landau-obs-timeseries/1";

/// One time step's worth of named channels.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Record {
    /// Step index (the merge key).
    pub step: u64,
    /// Simulation time at the *end* of the step.
    pub t: f64,
    /// Step size taken.
    pub dt: f64,
    /// Named channels, sorted by name.
    pub values: BTreeMap<String, f64>,
}

impl Record {
    /// A record with no channels yet.
    pub fn new(step: u64, t: f64, dt: f64) -> Record {
        Record {
            step,
            t,
            dt,
            values: BTreeMap::new(),
        }
    }

    /// Set (or overwrite) one channel.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_string(), value);
    }

    /// Set a per-species channel: stored as `name.s<species>`, so species
    /// columns of one quantity sort together.
    pub fn set_species(&mut self, name: &str, species: usize, value: f64) {
        self.values.insert(format!("{name}.s{species}"), value);
    }

    /// Builder-style [`Record::set`].
    pub fn with(mut self, name: &str, value: f64) -> Record {
        self.set(name, value);
        self
    }

    /// Fold another record for the same step into this one: incoming
    /// channels overwrite same-named ones, `t`/`dt` take the incoming
    /// values. Overwrite-on-conflict keeps the fold associative.
    fn merge_from(&mut self, other: &Record) {
        self.t = other.t;
        self.dt = other.dt;
        for (k, v) in &other.values {
            self.values.insert(k.clone(), *v);
        }
    }
}

/// An append-only sequence of [`Record`]s, sorted by step index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    records: Vec<Record>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Number of distinct steps recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, sorted by step index.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The record for one step index, if present.
    pub fn record(&self, step: u64) -> Option<&Record> {
        self.records
            .binary_search_by_key(&step, |r| r.step)
            .ok()
            .map(|i| &self.records[i])
    }

    /// Append a record, folding it into an existing record with the same
    /// step index (channel union, incoming values win).
    pub fn push(&mut self, rec: Record) {
        match self.records.binary_search_by_key(&rec.step, |r| r.step) {
            Ok(i) => self.records[i].merge_from(&rec),
            Err(i) => self.records.insert(i, rec),
        }
    }

    /// Fold another series into this one record-wise. Associative, like
    /// [`crate::MetricSnapshot::merge`].
    pub fn merge(&mut self, other: &TimeSeries) {
        for r in &other.records {
            self.push(r.clone());
        }
    }

    /// Sorted union of all channel names across the series.
    pub fn channels(&self) -> Vec<String> {
        let mut set = std::collections::BTreeSet::new();
        for r in &self.records {
            for k in r.values.keys() {
                set.insert(k.clone());
            }
        }
        set.into_iter().collect()
    }

    /// Export as a schema-tagged JSON document.
    pub fn to_json(&self) -> Json {
        let channels = Json::Arr(self.channels().into_iter().map(Json::Str).collect());
        let records = Json::Arr(
            self.records
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("step".to_string(), Json::Num(r.step as f64)),
                        ("t".to_string(), Json::Num(r.t)),
                        ("dt".to_string(), Json::Num(r.dt)),
                        (
                            "values".to_string(),
                            Json::Obj(
                                r.values
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str(TIMESERIES_SCHEMA.to_string()),
            ),
            ("channels".to_string(), channels),
            ("records".to_string(), records),
        ])
    }

    /// Serialized JSON text (byte-stable: sorted channel maps, sorted
    /// records, shortest-roundtrip numbers).
    pub fn to_json_text(&self) -> String {
        self.to_json().to_text()
    }

    /// Parse a document produced by [`TimeSeries::to_json`], validating
    /// the schema tag.
    pub fn from_json(doc: &Json) -> Result<TimeSeries, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != TIMESERIES_SCHEMA {
            return Err(format!("unsupported schema {schema:?}"));
        }
        let recs = doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or("missing records array")?;
        let mut out = TimeSeries::new();
        for (i, r) in recs.iter().enumerate() {
            let step = r
                .get("step")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("record {i}: bad step"))?;
            let t = r
                .get("t")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("record {i}: bad t"))?;
            let dt = r
                .get("dt")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("record {i}: bad dt"))?;
            let mut rec = Record::new(step, t, dt);
            let vals = r
                .get("values")
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("record {i}: bad values"))?;
            for (k, v) in vals {
                let v = v
                    .as_f64()
                    .ok_or_else(|| format!("record {i}: channel {k} is not a number"))?;
                rec.set(k, v);
            }
            out.push(rec);
        }
        Ok(out)
    }

    /// Parse serialized JSON text (see [`TimeSeries::from_json`]).
    pub fn parse(text: &str) -> Result<TimeSeries, String> {
        let doc = Json::parse(text).map_err(|e| format!("{e:?}"))?;
        TimeSeries::from_json(&doc)
    }

    /// Export as CSV: `step,t,dt,<channels…>` with channels in sorted
    /// order and empty cells for channels a record does not carry.
    pub fn to_csv(&self) -> String {
        let channels = self.channels();
        let mut out = String::from("step,t,dt");
        for c in &channels {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for r in &self.records {
            out.push_str(&format!("{},{},{}", r.step, r.t, r.dt));
            for c in &channels {
                out.push(',');
                if let Some(v) = r.values.get(c) {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Thread-safe collection point for timeseries records. Producers are
/// handed an `Arc<SeriesSink>` (or fall back to [`SeriesSink::global`]);
/// consumers take a [`SeriesSink::snapshot`] and export it.
#[derive(Debug, Default)]
pub struct SeriesSink {
    inner: Mutex<TimeSeries>,
}

impl SeriesSink {
    /// A fresh, empty sink.
    pub fn new() -> SeriesSink {
        SeriesSink::default()
    }

    /// Append one record (folding by step index, see [`TimeSeries::push`]).
    pub fn push(&self, rec: Record) {
        lock(&self.inner).push(rec);
    }

    /// Point-in-time copy of the collected series.
    pub fn snapshot(&self) -> TimeSeries {
        lock(&self.inner).clone()
    }

    /// Clear all collected records.
    pub fn reset(&self) {
        *lock(&self.inner) = TimeSeries::new();
    }

    /// The process-wide default sink.
    pub fn global() -> &'static SeriesSink {
        GLOBAL.get_or_init(|| Arc::new(SeriesSink::new()))
    }

    /// Shared handle to the process-wide default sink.
    pub fn global_arc() -> Arc<SeriesSink> {
        SeriesSink::global();
        GLOBAL.get().expect("initialized above").clone()
    }
}

static GLOBAL: OnceLock<Arc<SeriesSink>> = OnceLock::new();

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(specs: &[(u64, &[(&str, f64)])]) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for &(step, chans) in specs {
            let mut r = Record::new(step, step as f64 * 0.25, 0.25);
            for &(name, v) in chans {
                r.set(name, v);
            }
            ts.push(r);
        }
        ts
    }

    #[test]
    fn push_merges_by_step_index() {
        let mut ts = TimeSeries::new();
        ts.push(Record::new(3, 0.75, 0.25).with("a", 1.0));
        ts.push(Record::new(1, 0.25, 0.25).with("a", 2.0));
        ts.push(Record::new(3, 0.75, 0.25).with("b", 4.0));
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.records()[0].step, 1);
        let r3 = ts.record(3).unwrap();
        assert_eq!(r3.values["a"], 1.0);
        assert_eq!(r3.values["b"], 4.0);
        assert_eq!(ts.channels(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn species_channels_get_suffixed_names() {
        let mut r = Record::new(0, 0.0, 0.1);
        r.set_species("mass", 0, 1.0);
        r.set_species("mass", 1, 0.5);
        assert_eq!(r.values["mass.s0"], 1.0);
        assert_eq!(r.values["mass.s1"], 0.5);
    }

    #[test]
    fn merge_is_associative() {
        let a = series(&[(0, &[("x", 1.0)]), (1, &[("x", 2.0)])]);
        let b = series(&[(1, &[("y", 3.0)]), (2, &[("x", 4.0)])]);
        let c = series(&[(2, &[("y", 5.0)])]);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.len(), 3);
    }

    #[test]
    fn json_round_trip_is_lossless_and_byte_stable() {
        let mut ts = series(&[
            (0, &[("T_e", 100.0)]),
            (7, &[("T_e", 0.05), ("J_z", 1.5e-3)]),
        ]);
        let mut r = Record::new(7, 1.75, 0.25);
        r.set_species("mass_drift", 1, 1.25e-12);
        ts.push(r);
        let text = ts.to_json_text();
        let back = TimeSeries::parse(&text).unwrap();
        assert_eq!(back, ts);
        assert_eq!(back.to_json_text(), text);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(TimeSeries::parse("{\"schema\":\"nope/9\",\"records\":[]}").is_err());
        assert!(TimeSeries::parse("{\"records\":[]}").is_err());
    }

    #[test]
    fn csv_has_header_and_empty_cells_for_missing_channels() {
        let ts = series(&[(0, &[("a", 1.5)]), (1, &[("b", 2.0)])]);
        let csv = ts.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "step,t,dt,a,b");
        assert_eq!(lines[1], "0,0,0.25,1.5,");
        assert_eq!(lines[2], "1,0.25,0.25,,2");
    }

    #[test]
    fn sink_is_shared_and_resettable() {
        let sink = SeriesSink::new();
        sink.push(Record::new(0, 0.0, 0.1).with("n", 1.0));
        sink.push(Record::new(0, 0.0, 0.1).with("m", 2.0));
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.records()[0].values.len(), 2);
        sink.reset();
        assert!(sink.snapshot().is_empty());
    }
}
