//! Unified observability layer for the Landau workspace.
//!
//! Three pieces, designed to be cheap enough to leave on for every run:
//!
//! - **Spans** ([`span`], [`span!`]): hierarchical wall-clock timing. A
//!   span guard opened inside another span becomes its child; each thread
//!   records into a private arena (no locks on the hot path) and merges
//!   into the global accumulator only when its outermost span closes.
//!   Children are keyed and reported by name, so the merged tree is
//!   deterministic regardless of how the worker pool scheduled the work.
//! - **Metrics** ([`MetricRegistry`]): typed counters (monotonic `u64`
//!   sums), gauges (`f64`, merged by max), and log₂-bucketed histograms.
//!   Snapshots merge associatively, so per-thread or per-device
//!   registries can be folded in any order.
//! - **Profiles** ([`Profile`]): one capture = span tree + metric
//!   snapshot, exportable as stable-schema JSON (`profile.json`) or a
//!   human-readable table, with a direct mapping onto the paper's
//!   Table VII component breakdown ([`Profile::table7_components`]).
//! - **Timeseries** ([`TimeSeries`], [`SeriesSink`]): step-level physics
//!   records (step index, sim time, Δt, named channels) with a stable
//!   JSON/CSV schema; pure data, available in every build configuration.
//! - **Trace export** ([`chrome_trace`], [`folded_stacks`]): the merged
//!   span forest rendered as a Chrome-Trace/Perfetto-loadable timeline
//!   (deterministic synthetic timestamps) or folded flamegraph stacks.
//! - **Journal** ([`Journal`], [`Event`]): a bounded lock-free ring of
//!   structured events (job lifecycle, recovery, degradation,
//!   checkpoints, alerts) under the stable `landau-obs-events/1` schema;
//!   full rings drop-and-count instead of blocking.
//! - **Trace context** ([`TraceCtx`], [`push_trace_ctx`]): job/tenant/
//!   slice attribution that follows work across executor and pool
//!   threads, so [`job_spans_snapshot`] yields one rooted per-job tree.
//! - **Live export** ([`openmetrics`], [`SloWatchdog`]): OpenMetrics
//!   text rendering of one consistent snapshot, plus burn-rate SLO rules
//!   that publish `alert.*` metrics and journal events.
//!
//! Recording is feature-gated (`record`, on by default) and runtime-
//! switchable ([`set_recording`]). With the feature off every call site
//! compiles to a unit value; with it on but recording disabled a span
//! costs one relaxed atomic load. Instrumentation never touches solver
//! arithmetic: fault-free runs are bitwise identical with recording on,
//! off, or compiled out.

pub mod alert;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod openmetrics;
pub mod profile;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use alert::{AlertMode, Firing, SloRule, SloSignal, SloViolation, SloWatchdog};
pub use journal::{
    events_to_json, merge_drained, parse_events, Event, EventKind, Journal, EVENTS_SCHEMA,
};
pub use metrics::{Counter, HistogramSnapshot, MetricRegistry, MetricSnapshot};
pub use profile::{reset_global, Profile, Table7Components, PROFILE_SCHEMA};
pub use span::{
    job_spans_snapshot, push_trace_ctx, recording, reset_spans, set_recording, span,
    spans_snapshot, trace_ctx, traced_jobs, SpanGuard, SpanNode, SpanSnapshot, TraceCtx,
    TraceCtxGuard,
};
pub use timeseries::{Record, SeriesSink, TimeSeries, TIMESERIES_SCHEMA};
pub use trace::{chrome_trace, chrome_trace_deterministic, folded_stacks, job_chrome_trace};

/// Well-known span names used across the workspace, so call sites and
/// consumers (table renderers, tests) agree on spelling.
pub mod names {
    /// One guarded solver step (`TimeIntegrator::try_step`): the Table VII
    /// "Total" component.
    pub const STEP: &str = "step";
    /// One Newton iteration inside a step.
    pub const NEWTON_ITER: &str = "newton_iter";
    /// Nonlinear residual evaluation.
    pub const RESIDUAL: &str = "residual";
    /// Jacobian factorization (build + LU): the Table VII "factor" component.
    pub const FACTOR: &str = "factor";
    /// Back/forward substitution: the Table VII "solve" component.
    pub const SOLVE: &str = "solve";
    /// Full Landau operator construction: the Table VII "Landau" component.
    pub const JACOBIAN_BUILD: &str = "jacobian_build";
    /// Device-kernel portion of operator construction (inner integral +
    /// element matrices): the Table VII "(Kernel)" component.
    pub const KERNEL: &str = "kernel";
    /// Matrix assembly (scatter) portion of operator construction.
    pub const ASSEMBLY: &str = "assembly";
    /// Shifted-mass operator construction.
    pub const MASS_BUILD: &str = "mass_build";
    /// Inner Landau integral (any backend, cached or uncached).
    pub const INNER_INTEGRAL: &str = "inner_integral";
    /// Element-matrix formation from integrated coefficients.
    pub const ELEMENT_MATRICES: &str = "element_matrices";
    /// Mass element-matrix formation.
    pub const MASS_ELEMENTS: &str = "mass_elements";
    /// Element-to-global scatter (any assembly path).
    pub const SCATTER: &str = "scatter";
    /// Block-band LU factorization sweep.
    pub const LU_FACTOR: &str = "lu_factor";
    /// Block-band triangular solve sweep.
    pub const TRI_SOLVE: &str = "tri_solve";
    /// One adaptive-recovery advance (substeps + retries included).
    pub const ADAPTIVE_ADVANCE: &str = "adaptive_advance";
    /// One batched multi-vertex advance (calling thread).
    pub const BATCH_ADVANCE: &str = "batched_advance";
    /// One vertex's advance inside a batch (worker threads).
    pub const VERTEX_ADVANCE: &str = "vertex_advance";
    /// One fused (all-lanes) batched Jacobian-kernel launch.
    pub const BATCH_KERNEL: &str = "batched_kernel";
    /// One fused batched banded-LU factorization over the lane SoA.
    pub const BATCH_FACTOR: &str = "batched_factor";
    /// One fused batched forward/backward triangular solve.
    pub const BATCH_SOLVE: &str = "batched_solve";
    /// Quench-driver equilibration phase.
    pub const EQUILIBRATION: &str = "equilibration";
    /// Quench-driver thermal-quench phase.
    pub const QUENCH: &str = "quench";
    /// One parallel sweep dispatched through `landau-par`.
    pub const PAR_SWEEP: &str = "par_sweep";
    /// One durable checkpoint frame written (encode + storage write).
    pub const CKPT_WRITE: &str = "ckpt_write";
    /// One checkpoint load/validate walk over stored generations.
    pub const CKPT_LOAD: &str = "ckpt_load";
    /// One scheduler-granted budgeted driver slice in the job server.
    pub const SERVE_SLICE: &str = "serve_slice";
    /// One driver (re)build for a submitted or resumed server job.
    pub const SERVE_BUILD: &str = "serve_build";
}

/// True when span recording is compiled in (`record` feature).
pub const fn recording_compiled() -> bool {
    cfg!(feature = "record")
}

/// Open a named timing span for the current scope:
/// `span!("jacobian_build");` records until the end of the enclosing
/// block. Expands to a hygienic guard binding, so multiple `span!`
/// invocations may share one scope (they nest in order).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _span_guard = $crate::span($name);
    };
}
