//! Hardware models for the performance experiments.
//!
//! The paper's throughput tables were measured on Summit (POWER9 + V100),
//! Spock (EPYC + MI100) and Fugaku (A64FX) nodes. Those machines are the
//! one thing this reproduction cannot run; per DESIGN.md §2 they are
//! replaced by calibrated analytic + discrete-event models driven by the
//! *real* operation counts measured from the Rust kernels:
//!
//! * [`roofline`] — arithmetic-intensity/roofline analysis of the counted
//!   kernels (Table IV);
//! * [`machine`] — node configurations with device specs, SMT efficiency
//!   and MPS quality (§V-A–§V-C);
//! * [`profile`] — the per-Newton-iteration operation profile extracted
//!   from a real solver run;
//! * [`des`] — a discrete-event, processor-sharing simulation of many MPI
//!   ranks dispatching kernels to shared GPUs and host cores, producing
//!   Newton-iterations-per-second throughput (Tables II, III, V, VI, VII,
//!   VIII).
//!
//! The mechanisms in the model are exactly the ones the paper names:
//! roofline-limited kernel times, kernel-launch overhead, MPS stream
//! merging vs time-sliced contexts, hardware-thread (SMT) gains, the
//! MI100's software f64 atomics, and Kokkos' portability overhead.

pub mod des;
pub mod machine;
pub mod obs_bridge;
pub mod occupancy;
pub mod profile;
pub mod roofline;

pub use des::{simulate_node, NodeThroughput};
pub use machine::{MachineConfig, MpsQuality};
pub use obs_bridge::{kernel_stats_from_metrics, roofline_from_metrics};
pub use occupancy::{fused_vs_host, occupancy_report, FusedGeometry, OccupancyReport};
pub use profile::IterationProfile;
pub use roofline::{roofline_report, RooflineReport};
