//! Roofline analysis of counted kernels (Table IV).
//!
//! From the counters we have exact FLOP and DRAM-byte totals; the model
//! estimates achieved throughput as the roofline bound degraded by two
//! measured-in-the-paper inefficiencies: FP64 pipe utilization and the
//! DFMA fraction (only fused ops reach the nominal peak; a `DMUL`/`DADD`
//! mix runs the pipe at half rate for the non-fused share).

use landau_vgpu::{DeviceSpec, KernelStats};

/// Per-kernel execution model parameters.
#[derive(Clone, Copy, Debug)]
pub struct KernelModel {
    /// Fraction of issue slots the FP64 pipe is kept busy
    /// (paper, Jacobian on V100: 0.664).
    pub pipe_util: f64,
    /// Fraction of FLOPs issued as fused multiply-adds
    /// (paper: 0.64 for the Jacobian kernel).
    pub fma_fraction: f64,
    /// Achievable fraction of DRAM bandwidth for this access pattern
    /// (the mass kernel's constrained-face imbalance lowers it, §V-A1).
    pub mem_efficiency: f64,
}

impl KernelModel {
    /// The Jacobian (inner-integral) kernel on a healthy GPU back-end.
    pub fn jacobian() -> Self {
        KernelModel {
            pipe_util: 0.664,
            fma_fraction: 0.64,
            mem_efficiency: 0.75,
        }
    }

    /// The mass kernel: latency-bound assembly traffic.
    pub fn mass() -> Self {
        KernelModel {
            pipe_util: 0.30,
            fma_fraction: 0.5,
            mem_efficiency: 0.17,
        }
    }

    /// Effective compute ceiling in FLOP/s on a device.
    pub fn compute_ceiling(&self, dev: &DeviceSpec) -> f64 {
        dev.peak_fp64_gflops
            * 1e9
            * self.pipe_util
            * (self.fma_fraction + (1.0 - self.fma_fraction) * 0.5)
    }

    /// Effective bandwidth ceiling in B/s.
    pub fn memory_ceiling(&self, dev: &DeviceSpec) -> f64 {
        dev.dram_gbps * 1e9 * self.mem_efficiency
    }

    /// Modeled kernel execution time for counted totals (seconds),
    /// excluding launch overhead.
    pub fn kernel_time(&self, dev: &DeviceSpec, flops: u64, bytes: u64) -> f64 {
        let tc = flops as f64 / self.compute_ceiling(dev);
        let tm = bytes as f64 / self.memory_ceiling(dev);
        tc.max(tm)
    }
}

/// The Table IV row for one kernel.
#[derive(Clone, Copy, Debug)]
pub struct RooflineReport {
    /// Arithmetic intensity (FLOPs per DRAM byte).
    pub ai: f64,
    /// Achieved FLOP/s under the model.
    pub achieved_flops: f64,
    /// Achieved as a fraction of nominal peak ("% roofline").
    pub roofline_fraction: f64,
    /// True if the compute ceiling binds (else memory-bound).
    pub compute_bound: bool,
    /// The binding resource's utilization (pipe util or DRAM fraction).
    pub bottleneck_utilization: f64,
}

/// Analyze one kernel's counted totals on a device.
pub fn roofline_report(
    stats: &KernelStats,
    model: &KernelModel,
    dev: &DeviceSpec,
) -> RooflineReport {
    let bytes = stats.dram_read + stats.dram_write;
    let ai = stats.arithmetic_intensity();
    let t = model.kernel_time(dev, stats.flops, bytes);
    let achieved = if t > 0.0 { stats.flops as f64 / t } else { 0.0 };
    let tc = stats.flops as f64 / model.compute_ceiling(dev);
    let tm = bytes as f64 / model.memory_ceiling(dev);
    let compute_bound = tc >= tm;
    RooflineReport {
        ai,
        achieved_flops: achieved,
        roofline_fraction: achieved / (dev.peak_fp64_gflops * 1e9),
        compute_bound,
        bottleneck_utilization: if compute_bound {
            model.pipe_util
        } else {
            model.mem_efficiency
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(flops: u64, bytes: u64) -> KernelStats {
        KernelStats {
            flops,
            dram_read: bytes,
            ..Default::default()
        }
    }

    #[test]
    fn jacobian_like_kernel_is_compute_bound() {
        let dev = DeviceSpec::v100();
        // AI = 16, above the knee (8.8).
        let s = stats(16_000_000_000, 1_000_000_000);
        let r = roofline_report(&s, &KernelModel::jacobian(), &dev);
        assert!(r.compute_bound);
        assert!((r.ai - 16.0).abs() < 1e-12);
        // Paper: 53% of peak. Our model: 0.664·(0.64 + 0.18) = 0.545.
        assert!(
            (r.roofline_fraction - 0.545).abs() < 0.02,
            "{}",
            r.roofline_fraction
        );
    }

    #[test]
    fn mass_like_kernel_is_memory_bound() {
        let dev = DeviceSpec::v100();
        // AI = 1.8, below the knee.
        let s = stats(1_800_000_000, 1_000_000_000);
        let r = roofline_report(&s, &KernelModel::mass(), &dev);
        assert!(!r.compute_bound);
        assert!(r.roofline_fraction < 0.25, "{}", r.roofline_fraction);
        assert!((r.bottleneck_utilization - 0.17).abs() < 1e-12);
    }

    #[test]
    fn kernel_time_scales_linearly() {
        let dev = DeviceSpec::v100();
        let m = KernelModel::jacobian();
        let t1 = m.kernel_time(&dev, 1_000_000_000, 10_000_000);
        let t2 = m.kernel_time(&dev, 2_000_000_000, 20_000_000);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn v100_beats_a64fx_on_compute() {
        let m = KernelModel::jacobian();
        let tv = m.kernel_time(&DeviceSpec::v100(), 1 << 40, 1 << 30);
        let ta = m.kernel_time(&DeviceSpec::a64fx(), 1 << 40, 1 << 30);
        assert!(ta > 2.0 * tv);
    }
}
