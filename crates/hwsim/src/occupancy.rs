//! Occupancy accounting for fused batched launches.
//!
//! The fused batched pipeline (landau-core's `BatchMode::Fused`) turns N
//! per-vertex kernel launches into one grid launch whose blocks are
//! (lane, element) pairs. On a real device that changes two things the
//! throughput model must account for:
//!
//! * **Launch overhead amortization** — one host→device dispatch instead
//!   of one per vertex ([`FusedGeometry::launch_overhead_s`]).
//! * **Wave quantization** — the grid executes in waves of
//!   `SMs × blocks_per_SM` resident blocks; a single vertex's ~100-block
//!   grid leaves most of a large GPU idle, while the fused grid fills
//!   whole waves and pays the partial-tail wave once per *batch* instead
//!   of once per *vertex* ([`occupancy_report`]).
//!
//! The inputs map directly onto the batch telemetry landau-core publishes:
//! `batch.launches` and `batch.active_lanes` give the mean live-lane count
//! per fused launch, which is the `lanes` here.

use crate::machine::MachineConfig;
use landau_vgpu::DeviceSpec;

/// Grid geometry of one fused batched launch: `lanes` active (vertex,
/// species) lanes, each contributing `blocks_per_lane` blocks (elements
/// for the Jacobian kernel, 1 for a factor/solve sweep).
#[derive(Clone, Copy, Debug)]
pub struct FusedGeometry {
    /// Live lanes in this launch (retired lanes contribute no blocks).
    pub lanes: usize,
    /// Blocks each lane contributes.
    pub blocks_per_lane: usize,
}

impl FusedGeometry {
    /// Total blocks in the fused grid.
    pub fn blocks(&self) -> usize {
        self.lanes * self.blocks_per_lane
    }

    /// Host→device dispatch cost of executing this work fused (one
    /// launch) vs per-lane (one launch per lane).
    pub fn launch_overhead_s(&self, dev: &DeviceSpec) -> (f64, f64) {
        let per = dev.launch_overhead_us * 1e-6;
        (per, per * self.lanes as f64)
    }
}

/// Wave-quantization report for one grid on one device.
#[derive(Clone, Copy, Debug)]
pub struct OccupancyReport {
    /// Blocks in the grid.
    pub blocks: usize,
    /// Blocks resident per wave (`SMs × blocks_per_sm`).
    pub wave_capacity: usize,
    /// Full or partial waves needed to drain the grid.
    pub waves: usize,
    /// Mean fraction of resident slots doing work over all waves
    /// (`blocks / (waves × capacity)`); 1.0 for exact multiples.
    pub utilization: f64,
}

/// Quantize a grid of `blocks` into waves on `dev` with `blocks_per_sm`
/// co-resident blocks per SM.
pub fn occupancy_report(dev: &DeviceSpec, blocks_per_sm: usize, blocks: usize) -> OccupancyReport {
    assert!(blocks_per_sm > 0);
    let capacity = dev.sms as usize * blocks_per_sm;
    let waves = blocks.div_ceil(capacity);
    OccupancyReport {
        blocks,
        wave_capacity: capacity,
        waves,
        utilization: if waves == 0 {
            0.0
        } else {
            blocks as f64 / (waves * capacity) as f64
        },
    }
}

/// Side-by-side wave accounting of the fused grid vs the host loop's
/// per-lane grids (each lane launched alone pays its own partial wave
/// and its own dispatch).
#[derive(Clone, Copy, Debug)]
pub struct FusedVsHost {
    /// The one fused grid.
    pub fused: OccupancyReport,
    /// Waves summed over per-lane launches.
    pub host_waves: usize,
    /// Mean utilization of the per-lane launches.
    pub host_utilization: f64,
    /// Dispatch seconds: fused pays one launch, host pays `lanes`.
    pub fused_dispatch_s: f64,
    pub host_dispatch_s: f64,
}

/// Compare executing `geom` as one fused grid vs one launch per lane on
/// a machine's GPU.
pub fn fused_vs_host(
    machine: &MachineConfig,
    blocks_per_sm: usize,
    geom: FusedGeometry,
) -> FusedVsHost {
    let dev = &machine.gpu;
    let fused = occupancy_report(dev, blocks_per_sm, geom.blocks());
    let per_lane = occupancy_report(dev, blocks_per_sm, geom.blocks_per_lane);
    let host_waves = per_lane.waves * geom.lanes;
    let (fused_dispatch_s, host_dispatch_s) = geom.launch_overhead_s(dev);
    FusedVsHost {
        fused,
        host_waves,
        host_utilization: per_lane.utilization,
        fused_dispatch_s,
        host_dispatch_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use landau_vgpu::DeviceSpec;

    #[test]
    fn exact_multiples_fill_every_wave() {
        let dev = DeviceSpec::v100(); // 80 SMs
        let r = occupancy_report(&dev, 2, 160 * 3);
        assert_eq!(r.wave_capacity, 160);
        assert_eq!(r.waves, 3);
        assert!((r.utilization - 1.0).abs() < 1e-15);
    }

    #[test]
    fn tail_wave_lowers_utilization_once() {
        let dev = DeviceSpec::v100();
        let r = occupancy_report(&dev, 2, 160 + 1);
        assert_eq!(r.waves, 2);
        assert!(r.utilization < 0.51);
        // Empty grid: no waves, zero utilization, no NaN.
        let z = occupancy_report(&dev, 2, 0);
        assert_eq!(z.waves, 0);
        assert_eq!(z.utilization, 0.0);
    }

    #[test]
    fn fused_grid_beats_per_lane_launches() {
        // 256 vertices × 2 species on a ~100-element mesh: each lane alone
        // underfills a V100 wave badly; fused, the same work fills waves
        // and pays one dispatch.
        let m = MachineConfig::summit_cuda();
        let geom = FusedGeometry {
            lanes: 512,
            blocks_per_lane: 100,
        };
        let cmp = fused_vs_host(&m, 2, geom);
        assert!(cmp.fused.waves < cmp.host_waves);
        assert!(cmp.fused.utilization > cmp.host_utilization);
        assert!(cmp.fused.utilization > 0.99);
        assert!(cmp.host_dispatch_s > 100.0 * cmp.fused_dispatch_s);
    }

    #[test]
    fn retired_lanes_shrink_the_grid() {
        let m = MachineConfig::summit_cuda();
        let full = fused_vs_host(
            &m,
            2,
            FusedGeometry {
                lanes: 512,
                blocks_per_lane: 100,
            },
        );
        let late = fused_vs_host(
            &m,
            2,
            FusedGeometry {
                lanes: 32,
                blocks_per_lane: 100,
            },
        );
        // Fewer live lanes → fewer waves; the active mask retires work
        // instead of padding the grid with idle blocks.
        assert!(late.fused.waves < full.fused.waves);
        assert_eq!(late.fused.blocks, 3200);
    }
}
