//! Bridge from recorded observability metrics to the hardware models.
//!
//! The virtual GPU publishes every kernel launch into the unified
//! [`landau_obs::MetricRegistry`] as `kernel.<name>.<field>` counters (see
//! `Device::record_launch`). This module reconstitutes those counters into
//! the [`KernelStats`] totals the roofline analysis consumes, so Table IV
//! can be produced directly from a captured profile — no ad-hoc counter
//! plumbing between the solver and the model.

use crate::roofline::{roofline_report, KernelModel, RooflineReport};
use landau_obs::MetricSnapshot;
use landau_vgpu::{DeviceSpec, KernelStats};

/// Reassemble one kernel's counted totals from a metrics snapshot.
///
/// Returns `None` when the kernel never launched (no
/// `kernel.<name>.launches` counter) — zero-valued fields were skipped at
/// publish time, so absence of the launch counter is the only reliable
/// "never ran" signal; any other missing counter reads as 0.
pub fn kernel_stats_from_metrics(snap: &MetricSnapshot, kernel: &str) -> Option<KernelStats> {
    let get = |field: &str| snap.counter(&format!("kernel.{kernel}.{field}"));
    let launches = get("launches");
    if launches == 0 {
        return None;
    }
    Some(KernelStats {
        flops: get("flops"),
        dram_read: get("dram_read"),
        dram_write: get("dram_write"),
        shared_bytes: get("shared_bytes"),
        atomics: get("atomics"),
        shuffles: get("shuffles"),
        cache_build_flops: get("cache_build_flops"),
        cache_read: get("cache_read"),
        cache_flops_saved: get("cache_flops_saved"),
        launches,
        blocks: get("blocks"),
    })
}

/// Roofline analysis of a recorded kernel on `dev`: the Table IV path
/// from a captured profile. `None` when the kernel never launched.
pub fn roofline_from_metrics(
    snap: &MetricSnapshot,
    kernel: &str,
    model: &KernelModel,
    dev: &DeviceSpec,
) -> Option<RooflineReport> {
    kernel_stats_from_metrics(snap, kernel).map(|s| roofline_report(&s, model, dev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use landau_obs::MetricRegistry;
    use landau_vgpu::{Device, Tally};

    #[test]
    fn round_trips_through_device_publishing() {
        let reg = std::sync::Arc::new(MetricRegistry::new());
        let dev = Device::new(DeviceSpec::v100());
        dev.set_metric_registry(reg.clone());
        let tally = Tally {
            flops: 1_000_000,
            dram_read: 64_000,
            dram_write: 8_000,
            shared_bytes: 512,
            atomics: 10,
            shuffles: 20,
            ..Default::default()
        };
        dev.record_launch("jacobian", &tally, 80);
        dev.record_launch("jacobian", &tally, 80);
        let snap = reg.snapshot();
        let s = kernel_stats_from_metrics(&snap, "jacobian").expect("kernel launched");
        assert_eq!(s.launches, 2);
        assert_eq!(s.blocks, 160);
        assert_eq!(s.flops, 2_000_000);
        assert_eq!(s.dram_read, 128_000);
        assert_eq!(s.atomics, 20);
        // Matches the per-device registry view exactly.
        let direct = dev.kernel_stats("jacobian");
        assert_eq!(s.flops, direct.flops);
        assert_eq!(s.dram_write, direct.dram_write);
    }

    #[test]
    fn missing_kernel_is_none() {
        let reg = MetricRegistry::new();
        let snap = reg.snapshot();
        assert!(kernel_stats_from_metrics(&snap, "nope").is_none());
    }

    #[test]
    fn roofline_from_metrics_matches_direct_report() {
        let reg = std::sync::Arc::new(MetricRegistry::new());
        let dev = Device::new(DeviceSpec::v100());
        dev.set_metric_registry(reg.clone());
        let tally = Tally {
            flops: 16_000_000_000,
            dram_read: 1_000_000_000,
            ..Default::default()
        };
        dev.record_launch("jac", &tally, 80);
        let snap = reg.snapshot();
        let model = KernelModel::jacobian();
        let spec = DeviceSpec::v100();
        let r = roofline_from_metrics(&snap, "jac", &model, &spec).unwrap();
        let direct = roofline_report(&dev.kernel_stats("jac"), &model, &spec);
        assert_eq!(r.compute_bound, direct.compute_bound);
        assert!((r.ai - direct.ai).abs() < 1e-12);
        assert!((r.achieved_flops - direct.achieved_flops).abs() < 1e-3);
    }
}
