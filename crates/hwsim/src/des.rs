//! Discrete-event, processor-sharing node simulation.
//!
//! Models one node running many MPI ranks, each independently advancing the
//! same velocity-space problem (the paper's §V harness: "many MPI processes
//! asynchronously launching jobs on the GPUs"). Each Newton iteration is a
//! pipeline of phases:
//!
//! `host metadata → Jacobian kernel (GPU) → mass kernel (GPU) →
//!  factor (host) → solve (host)`
//!
//! Host phases run at a fixed per-process rate (its share of a core,
//! including the SMT gain when hardware threads are oversubscribed). GPU
//! phases enter a processor-sharing server per GPU: under good MPS up to
//! `mps_capacity` latency-bound kernels co-run at full rate (which is why
//! piling more ranks onto each GPU keeps paying off in Tables II/III);
//! with a poor multi-process service kernels serialize and each extra
//! resident process adds scheduling overhead, reproducing Spock's
//! throughput rollover (§V-D1).

use crate::machine::{MachineConfig, MpsQuality};
use crate::profile::IterationProfile;

/// Result of a node simulation.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeThroughput {
    /// Newton iterations per second across the node (the paper's figure of
    /// merit).
    pub newton_per_sec: f64,
    /// Makespan (seconds).
    pub t_total: f64,
    /// Per-process mean seconds in Landau matrix construction
    /// (kernel + metadata).
    pub t_landau: f64,
    /// Per-process mean seconds inside the GPU kernels (subset of Landau).
    pub t_kernel: f64,
    /// Per-process mean seconds in factorization.
    pub t_factor: f64,
    /// Per-process mean seconds in triangular solves.
    pub t_solve: f64,
    /// Total Newton iterations executed.
    pub iterations: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    HostPre,
    Jacobian,
    Mass,
    Factor,
    Solve,
}

struct ProcState {
    phase: Phase,
    iters_left: u64,
    remaining: f64,
    gpu: usize,
    t_kernel: f64,
    t_host_pre: f64,
    t_factor: f64,
    t_solve: f64,
}

/// Phase durations (standalone seconds) for one rank on a machine.
#[derive(Clone, Copy, Debug)]
struct PhaseTimes {
    host_pre: f64,
    jac: f64,
    mass: f64,
    factor: f64,
    solve: f64,
}

fn phase_times(
    m: &MachineConfig,
    p: &IterationProfile,
    host_rate: f64,
    kernel_threads: usize,
) -> PhaseTimes {
    let (jac, mass) = if m.gpus > 0 {
        let jac = p.kernel_flops as f64 / (m.gpu_kernel_gflops * 1e9 * m.lang_efficiency)
            + m.gpu.launch_overhead_us * 1e-6
            + if m.gpu.has_hw_f64_atomics {
                0.0
            } else {
                p.atomics as f64 * m.atomic_penalty_s
            };
        let mass = p.mass_bytes as f64 / (m.mass_gbps * 1e9 * m.lang_efficiency)
            + m.gpu.launch_overhead_us * 1e-6;
        (jac, mass)
    } else {
        // CPU machine: the kernel runs on this rank's OpenMP threads.
        let rate = m.cpu_kernel_gflops_per_core * 1e9 * m.lang_efficiency * kernel_threads as f64;
        (p.kernel_flops as f64 / rate, p.mass_flops as f64 / rate)
    };
    let h = m.host_overhead;
    PhaseTimes {
        host_pre: h * p.host_flops as f64 / host_rate,
        jac,
        mass,
        factor: h * p.factor_flops as f64 / host_rate,
        solve: h * p.solve_flops as f64 / host_rate,
    }
}

/// GPU processor-sharing rate for `k` resident kernels.
fn gpu_rate(mps: MpsQuality, capacity: usize, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let kf = k as f64;
    match mps {
        // Latency-bound kernels co-run at full rate up to `capacity`.
        MpsQuality::Good => (capacity as f64 / kf).min(1.0),
        // Serialized with per-resident scheduling overhead.
        MpsQuality::Poor => 1.0 / (kf * (1.0 + 0.10 * (kf - 1.0))),
        MpsQuality::None => 1.0 / (kf * 3.0_f64.min(kf)),
    }
}

/// Core of the simulation: run `procs` identical ranks for `iters` Newton
/// iterations each. `host_rate` is each rank's host FLOP rate;
/// `kernel_threads` only matters on CPU-only machines.
fn simulate(
    m: &MachineConfig,
    profile: &IterationProfile,
    procs: usize,
    host_rate: f64,
    kernel_threads: usize,
    iters: u64,
) -> NodeThroughput {
    assert!(procs > 0 && iters > 0);
    let pt = phase_times(m, profile, host_rate, kernel_threads);
    let ngpu = m.gpus.max(1) as usize;
    let mut ps: Vec<ProcState> = (0..procs)
        .map(|i| ProcState {
            phase: Phase::HostPre,
            iters_left: iters,
            remaining: pt.host_pre,
            gpu: i % ngpu,
            t_kernel: 0.0,
            t_host_pre: 0.0,
            t_factor: 0.0,
            t_solve: 0.0,
        })
        .collect();
    let gpu_phase = |ph: Phase| m.gpus > 0 && (ph == Phase::Jacobian || ph == Phase::Mass);
    let mut t = 0.0f64;
    let mut active = procs;
    while active > 0 {
        // Count resident kernels per GPU.
        let mut kcount = vec![0usize; ngpu];
        for p in &ps {
            if p.iters_left > 0 && gpu_phase(p.phase) {
                kcount[p.gpu] += 1;
            }
        }
        // Next completion under current rates.
        let mut dt = f64::INFINITY;
        for p in &ps {
            if p.iters_left == 0 {
                continue;
            }
            let r = if gpu_phase(p.phase) {
                gpu_rate(m.mps, m.mps_capacity, kcount[p.gpu])
            } else {
                1.0
            };
            if r > 0.0 {
                dt = dt.min(p.remaining / r);
            }
        }
        assert!(dt.is_finite(), "deadlock in DES");
        t += dt;
        // Advance everyone; transition finishers.
        for p in &mut ps {
            if p.iters_left == 0 {
                continue;
            }
            let on_gpu = gpu_phase(p.phase);
            let r = if on_gpu {
                gpu_rate(m.mps, m.mps_capacity, kcount[p.gpu])
            } else {
                1.0
            };
            match p.phase {
                Phase::HostPre => p.t_host_pre += dt,
                Phase::Jacobian | Phase::Mass => p.t_kernel += dt,
                Phase::Factor => p.t_factor += dt,
                Phase::Solve => p.t_solve += dt,
            }
            p.remaining -= r * dt;
            if p.remaining <= 1e-15 {
                let (next, rem) = match p.phase {
                    Phase::HostPre => (Phase::Jacobian, pt.jac),
                    Phase::Jacobian => (Phase::Mass, pt.mass),
                    Phase::Mass => (Phase::Factor, pt.factor),
                    Phase::Factor => (Phase::Solve, pt.solve),
                    Phase::Solve => {
                        p.iters_left -= 1;
                        if p.iters_left == 0 {
                            active -= 1;
                            (Phase::Solve, f64::INFINITY)
                        } else {
                            (Phase::HostPre, pt.host_pre)
                        }
                    }
                };
                p.phase = next;
                p.remaining = rem;
            }
        }
    }
    let total_iters = procs as u64 * iters;
    let inv_p = 1.0 / procs as f64;
    NodeThroughput {
        newton_per_sec: total_iters as f64 / t,
        t_total: t,
        t_kernel: ps.iter().map(|p| p.t_kernel).sum::<f64>() * inv_p,
        // The paper's "Landau" row is kernel time plus the CPU metadata
        // share of matrix construction (~15% of the host-pre work).
        t_landau: ps
            .iter()
            .map(|p| p.t_kernel + 0.15 * p.t_host_pre)
            .sum::<f64>()
            * inv_p,
        t_factor: ps.iter().map(|p| p.t_factor).sum::<f64>() * inv_p,
        t_solve: ps.iter().map(|p| p.t_solve).sum::<f64>() * inv_p,
        iterations: total_iters,
    }
}

/// Simulate a GPU node indexed the way Tables II/III/V are: `cores_per_gpu`
/// host cores driving each GPU and `procs_per_core` MPI ranks per core.
pub fn simulate_node(
    m: &MachineConfig,
    profile: &IterationProfile,
    cores_per_gpu: usize,
    procs_per_core: usize,
    iters: u64,
) -> NodeThroughput {
    assert!(m.gpus > 0, "use simulate_cpu_node for CPU-only machines");
    let procs = m.gpus as usize * cores_per_gpu * procs_per_core;
    // Each core's throughput rises sub-linearly with hardware threads and
    // is shared among its resident ranks.
    let host_rate = m.cpu_core_flops * m.smt(procs_per_core) / procs_per_core as f64;
    simulate(m, profile, procs, host_rate, 1, iters)
}

/// Simulate a CPU-only node (Fugaku, Table VI): `procs` MPI ranks, each
/// with `threads` OpenMP threads for the kernel.
pub fn simulate_cpu_node(
    m: &MachineConfig,
    profile: &IterationProfile,
    procs: usize,
    threads: usize,
    iters: u64,
) -> NodeThroughput {
    assert_eq!(m.gpus, 0);
    assert!(
        procs * threads <= m.cpu.sms as usize,
        "over-subscribed node"
    );
    let host_rate = m.cpu_core_flops;
    simulate(m, profile, procs, host_rate, threads, iters)
}

/// The Newton-iteration count of the paper's 100-step §V run (≈ 20.8 per
/// step; this count makes Tables II, VI and VII mutually consistent).
pub const PAPER_RUN_ITERS: u64 = 2080;

/// Standalone (unshared) Jacobian-kernel time per iteration on a machine —
/// the quantity Table VIII normalizes across machines.
pub fn standalone_kernel_time(
    m: &MachineConfig,
    profile: &IterationProfile,
    kernel_threads: usize,
) -> f64 {
    phase_times(m, profile, m.cpu_core_flops, kernel_threads).jac
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> IterationProfile {
        IterationProfile::paper_test_problem()
    }

    #[test]
    fn single_rank_throughput_near_table_ii() {
        // Paper Table II (1 core/GPU, 1 proc/core): 849 it/s on 6 GPUs.
        let m = MachineConfig::summit_cuda();
        let r = simulate_node(&m, &profile(), 1, 1, 100);
        assert!(
            r.newton_per_sec > 600.0 && r.newton_per_sec < 2600.0,
            "{}",
            r.newton_per_sec
        );
    }

    #[test]
    fn full_node_throughput_near_table_ii() {
        // Paper: 7,005 it/s at 7 cores/GPU × 3 procs/core.
        let m = MachineConfig::summit_cuda();
        let r = simulate_node(&m, &profile(), 7, 3, 50);
        assert!(
            r.newton_per_sec > 4500.0 && r.newton_per_sec < 20000.0,
            "{}",
            r.newton_per_sec
        );
    }

    #[test]
    fn throughput_scales_with_cores_per_gpu() {
        let m = MachineConfig::summit_cuda();
        let p = profile();
        let t1 = simulate_node(&m, &p, 1, 1, 30).newton_per_sec;
        let t3 = simulate_node(&m, &p, 3, 1, 30).newton_per_sec;
        let t7 = simulate_node(&m, &p, 7, 1, 30).newton_per_sec;
        // Near-linear growth while the GPU has headroom (Table II rows).
        assert!(t3 > 2.4 * t1, "t1={t1} t3={t3}");
        assert!(t7 > 5.0 * t1, "t1={t1} t7={t7}");
    }

    #[test]
    fn second_hardware_thread_helps_modestly() {
        let m = MachineConfig::summit_cuda();
        let p = profile();
        let a = simulate_node(&m, &p, 7, 1, 30).newton_per_sec;
        let b = simulate_node(&m, &p, 7, 2, 30).newton_per_sec;
        let c = simulate_node(&m, &p, 7, 3, 30).newton_per_sec;
        let g2 = b / a;
        let g3 = c / b;
        assert!(g2 > 1.05 && g2 < 1.45, "2nd thread gain {g2}");
        assert!(g3 > 0.95 && g3 < 1.15, "3rd thread gain {g3}");
    }

    #[test]
    fn kokkos_is_slightly_slower_than_cuda() {
        let p = profile();
        let cuda = simulate_node(&MachineConfig::summit_cuda(), &p, 7, 3, 30).newton_per_sec;
        let kk = simulate_node(&MachineConfig::summit_kokkos(), &p, 7, 3, 30).newton_per_sec;
        let ratio = cuda / kk;
        assert!(ratio > 1.03 && ratio < 1.30, "CUDA/Kokkos = {ratio}");
    }

    #[test]
    fn spock_rolls_over_with_oversubscription() {
        let m = MachineConfig::spock_kokkos_hip();
        let p = profile();
        // Table V shape: 2 procs/core improves small counts…
        let a11 = simulate_node(&m, &p, 1, 1, 30).newton_per_sec;
        let a12 = simulate_node(&m, &p, 1, 2, 30).newton_per_sec;
        assert!(a12 > a11);
        // …but at 8 cores/GPU the second rank per core hurts (rollover).
        let a81 = simulate_node(&m, &p, 8, 1, 30).newton_per_sec;
        let a82 = simulate_node(&m, &p, 8, 2, 30).newton_per_sec;
        assert!(a82 < a81, "expected rollover: {a81} vs {a82}");
        // Magnitudes in Table V's decade.
        assert!(a81 > 120.0 && a81 < 900.0, "{a81}");
    }

    #[test]
    fn summit_beats_spock_beats_fugaku() {
        let p = profile();
        let summit = simulate_node(&MachineConfig::summit_cuda(), &p, 7, 3, 20).newton_per_sec;
        let spock = simulate_node(&MachineConfig::spock_kokkos_hip(), &p, 8, 1, 20).newton_per_sec;
        let fugaku =
            simulate_cpu_node(&MachineConfig::fugaku_kokkos_omp(), &p, 4, 8, 20).newton_per_sec;
        assert!(summit > 5.0 * spock, "summit {summit} spock {spock}");
        assert!(spock > 2.0 * fugaku, "spock {spock} fugaku {fugaku}");
        // Fugaku lands near the paper's 39 it/s.
        assert!(fugaku > 15.0 && fugaku < 120.0, "{fugaku}");
    }

    #[test]
    fn fugaku_thread_scaling_is_good_for_jacobian() {
        let m = MachineConfig::fugaku_kokkos_omp();
        let p = profile();
        // 4 processes × {1, 8} threads: kernel time inversely ∝ threads.
        let t1 = simulate_cpu_node(&m, &p, 4, 1, 5);
        let t8 = simulate_cpu_node(&m, &p, 4, 8, 5);
        let ratio = t1.t_kernel / t8.t_kernel;
        assert!(ratio > 6.0 && ratio < 9.5, "thread scaling ratio {ratio}");
        // Total time scales worse than the kernel (host parts don't thread).
        let tot_ratio = t1.t_total / t8.t_total;
        assert!(tot_ratio < ratio, "total {tot_ratio} vs kernel {ratio}");
    }

    #[test]
    fn component_times_follow_table_vii() {
        // Table VII single-rank Summit/CUDA: factor > Landau > solve and the
        // kernel is ~80–90% of the Landau construction.
        let m = MachineConfig::summit_cuda();
        let p = profile();
        let r = simulate_node(&m, &p, 1, 1, 30);
        assert!(
            r.t_factor > r.t_landau,
            "factor {} landau {}",
            r.t_factor,
            r.t_landau
        );
        assert!(r.t_kernel <= r.t_landau);
        assert!(r.t_kernel / r.t_landau > 0.6, "{}", r.t_kernel / r.t_landau);
        assert!(r.t_solve < 0.3 * r.t_factor);
    }

    #[test]
    fn deterministic() {
        let m = MachineConfig::summit_cuda();
        let p = profile();
        let a = simulate_node(&m, &p, 5, 2, 10).newton_per_sec;
        let b = simulate_node(&m, &p, 5, 2, 10).newton_per_sec;
        assert_eq!(a, b);
    }
}
