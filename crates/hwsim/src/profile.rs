//! The per-Newton-iteration operation profile.
//!
//! Extracted from a *real* run of the Rust solver on the paper's test
//! problem (10 species, 80 Q3 elements): the kernel FLOP/byte totals come
//! from the virtual-GPU counters and the factor/solve FLOPs from the band
//! solver's cost model. The DES turns these counts into per-platform times.

/// Operation counts for one Newton iteration of one rank's problem.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IterationProfile {
    /// Jacobian-kernel FLOPs (inner integral + transform&assemble).
    pub kernel_flops: u64,
    /// Jacobian-kernel DRAM bytes.
    pub kernel_bytes: u64,
    /// Mass-kernel FLOPs.
    pub mass_flops: u64,
    /// Mass-kernel DRAM bytes.
    pub mass_bytes: u64,
    /// Atomic f64 adds issued by device assembly.
    pub atomics: u64,
    /// Banded-LU factorization FLOPs (host).
    pub factor_flops: u64,
    /// Triangular-solve FLOPs (host).
    pub solve_flops: u64,
    /// Other host work per iteration (residuals, vec ops, metadata), FLOPs.
    pub host_flops: u64,
}

impl IterationProfile {
    /// An analytic profile of the paper's test problem for use when no
    /// measured counts are supplied: `S` species, `N_e` Q3 elements,
    /// `n` dofs per species, half-bandwidth `B`.
    pub fn analytic(s: usize, ne: usize, n: usize, bw: usize) -> Self {
        let nq = 16u64;
        let nb = 16u64;
        let nip = ne as u64 * nq;
        let pair = 140 + 6 * s as u64 + 19;
        let kernel_flops = nip * nip * pair + ne as u64 * nq * (s as u64) * nb * (8 + nb * 6);
        let kernel_bytes =
            ne as u64 * (3 + 3 * s as u64) * nip * 8 + ne as u64 * (s as u64) * nb * nb * 8;
        let mass_flops = ne as u64 * nq * nb * (1 + 2 * nb);
        let mass_bytes = 2 * ne as u64 * (s as u64) * nb * nb * 8;
        let atomics = ne as u64 * (s as u64) * nb * nb;
        let factor_flops = (s * 2 * n * bw * (bw + 1)) as u64;
        let solve_flops = (s * 12 * n * bw) as u64;
        IterationProfile {
            kernel_flops,
            kernel_bytes,
            mass_flops,
            mass_bytes,
            atomics,
            factor_flops,
            solve_flops,
            host_flops: (s * n * 2000) as u64,
        }
    }

    /// The default 10-species, 80-element, Q3 profile of §V (dof count and
    /// bandwidth match our mesh of that configuration).
    pub fn paper_test_problem() -> Self {
        Self::analytic(10, 80, 750, 120)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_dominates_flops() {
        let p = IterationProfile::paper_test_problem();
        assert!(p.kernel_flops > 10 * p.mass_flops);
        assert!(p.kernel_flops > p.factor_flops);
    }

    #[test]
    fn jacobian_ai_is_in_paper_range() {
        let p = IterationProfile::paper_test_problem();
        let ai = p.kernel_flops as f64 / p.kernel_bytes as f64;
        // Paper measures 15.8 on the 320-cell problem; the 80-cell one is
        // the same order.
        assert!(ai > 5.0 && ai < 60.0, "AI = {ai}");
    }

    #[test]
    fn scales_quadratically_in_elements() {
        let a = IterationProfile::analytic(10, 80, 800, 60);
        let b = IterationProfile::analytic(10, 160, 1600, 80);
        let ratio = b.kernel_flops as f64 / a.kernel_flops as f64;
        assert!(ratio > 3.5 && ratio < 4.5, "{ratio}");
    }
}
