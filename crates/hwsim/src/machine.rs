//! Node configurations for the paper's four experiment platforms.
//!
//! Calibration: the per-iteration phase times implied by Table VII
//! (assuming the ~2,080 Newton iterations a 100-step, ~20.8-iteration/step
//! run performs — the count that simultaneously reproduces Table II's 849
//! it/s single-rank throughput, Table VI's 19.3 s Fugaku Jacobian time and
//! Table VI's 39 it/s) fix each machine's sustained kernel rate and host
//! FLOP rate. Everything else (scaling with ranks, saturation, rollover)
//! emerges from the DES mechanisms.

use landau_vgpu::DeviceSpec;

/// Quality of the GPU's multi-process scheduling (§V-A: NVIDIA MPS helps
/// Summit; §V-D1: "the AMD equivalent to MPS is not functioning well").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MpsQuality {
    /// Streams from several processes co-occupy the GPU at full rate (the
    /// Landau kernel is occupancy/latency-bound, not throughput-bound, so
    /// ~4 kernels overlap cleanly under MPS).
    Good,
    /// Kernels effectively serialize and each extra resident process adds
    /// scheduling overhead — Spock's rollover.
    Poor,
    /// Time-sliced contexts with a heavy switch penalty (the ~3× MPS gain
    /// the paper observed, inverted).
    None,
}

/// One node of an experiment machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Label used in the tables.
    pub name: &'static str,
    /// Programming language / back-end label.
    pub language: &'static str,
    /// GPUs per node (0 for CPU-only Fugaku).
    pub gpus: u32,
    /// GPU spec (ignored when `gpus == 0`).
    pub gpu: DeviceSpec,
    /// Host CPU spec (one node's worth; `sms` = usable cores).
    pub cpu: DeviceSpec,
    /// Kernel-side execution-model efficiency (CUDA = 1.0, Kokkos-CUDA
    /// ≈ 0.88 per §V-A).
    pub lang_efficiency: f64,
    /// Host-side overhead multiplier of the back-end (Kokkos vector/matrix
    /// interfaces cost a little extra on the CPU paths too — Table VII's
    /// Landau/factor deltas).
    pub host_overhead: f64,
    /// Multi-process GPU scheduling quality.
    pub mps: MpsQuality,
    /// Max kernels co-resident at full rate under Good MPS.
    pub mps_capacity: usize,
    /// SMT throughput multipliers for 1, 2, 3… hardware threads per core.
    pub smt_gain: Vec<f64>,
    /// *Effective* host FLOP rate per core on the factor/solve/meta code.
    /// Calibrated so the single-rank component times reproduce Table VII
    /// given *our* measured operation counts — i.e. this constant absorbs
    /// the banded-solver accounting difference between this implementation
    /// (half-bandwidth ≈ 123 on the perf mesh) and the paper's (effective
    /// ≈ 30). See EXPERIMENTS.md.
    pub cpu_core_flops: f64,
    /// Sustained Jacobian-kernel FLOP rate of one GPU on this problem size
    /// (latency-bound, far below peak; calibrated to Table VII).
    pub gpu_kernel_gflops: f64,
    /// Sustained mass-kernel bandwidth (GB/s; L1-latency bound, §V-A1).
    pub mass_gbps: f64,
    /// Sustained per-core kernel FLOP rate for CPU-only machines (before
    /// `lang_efficiency`, which carries the poor-vectorization penalty).
    pub cpu_kernel_gflops_per_core: f64,
    /// Extra per-atomic cost in seconds when the GPU lacks native f64
    /// atomics (CAS loop, §V-D1); 0 on native hardware.
    pub atomic_penalty_s: f64,
}

impl MachineConfig {
    /// One Summit node with the CUDA back-end: 6 V100 + 2×21 P9 cores.
    pub fn summit_cuda() -> Self {
        MachineConfig {
            name: "Summit",
            language: "CUDA",
            gpus: 6,
            gpu: DeviceSpec::v100(),
            cpu: DeviceSpec::power9(),
            lang_efficiency: 1.0,
            host_overhead: 1.0,
            mps: MpsQuality::Good,
            mps_capacity: 4,
            smt_gain: vec![1.0, 1.25, 1.28, 1.28],
            cpu_core_flops: 60.0e9,
            gpu_kernel_gflops: 260.0,
            mass_gbps: 30.0,
            cpu_kernel_gflops_per_core: 2.0,
            atomic_penalty_s: 0.0,
        }
    }

    /// Summit with the Kokkos-CUDA back-end (≈ 12% kernel penalty plus a
    /// little host overhead, §V-A & Table VII).
    pub fn summit_kokkos() -> Self {
        MachineConfig {
            language: "Kokkos-CUDA",
            lang_efficiency: 0.88,
            host_overhead: 1.06,
            ..Self::summit_cuda()
        }
    }

    /// One Spock node: 4 MI100 + 64-core EPYC, Kokkos-HIP. The kernel
    /// under-performs (immature ROCm + software f64 atomics, §V-D1) and
    /// the multi-process path rolls over.
    pub fn spock_kokkos_hip() -> Self {
        MachineConfig {
            name: "Spock",
            language: "Kokkos-HIP",
            gpus: 4,
            gpu: DeviceSpec::mi100(),
            cpu: DeviceSpec::epyc_rome(),
            lang_efficiency: 0.22,
            host_overhead: 1.0,
            mps: MpsQuality::Poor,
            mps_capacity: 1,
            smt_gain: vec![1.0, 1.22, 1.24, 1.24],
            // Table V implies the Spock runs were host-bound at small rank
            // counts (88 it/s at 4 ranks while the kernel alone would allow
            // ~780): a much lower effective host rate than the EPYC's
            // nominal "2× P9" in the factor row of Table VII. We follow
            // Table V (the shape result) and note the Table VII tension in
            // EXPERIMENTS.md.
            cpu_core_flops: 7.0e9,
            // Peak-proportional healthy rate (×1.47 of the V100's), cut by
            // lang_efficiency to the observed Kokkos-HIP performance.
            gpu_kernel_gflops: 380.0,
            mass_gbps: 25.0,
            cpu_kernel_gflops_per_core: 4.0,
            atomic_penalty_s: 4e-9,
        }
    }

    /// One Fugaku node: a single A64FX, Kokkos-OpenMP, no GPU. The paper
    /// measures poor auto-vectorization from the GNU/Kokkos-3.4 path.
    pub fn fugaku_kokkos_omp() -> Self {
        MachineConfig {
            name: "Fugaku",
            language: "Kokkos-OMP",
            gpus: 0,
            gpu: DeviceSpec::a64fx(),
            cpu: DeviceSpec::a64fx(),
            lang_efficiency: 0.12,
            host_overhead: 1.0,
            mps: MpsQuality::Good, // irrelevant without a GPU
            mps_capacity: 1,
            smt_gain: vec![1.0],
            cpu_core_flops: 28.0e9,
            gpu_kernel_gflops: 0.0,
            mass_gbps: 0.0,
            // 4 GF/s/core potential with SVE; ×0.12 observed.
            cpu_kernel_gflops_per_core: 4.0,
            atomic_penalty_s: 0.0,
        }
    }

    /// SMT throughput multiplier for `t` hardware threads per core.
    pub fn smt(&self, t: usize) -> f64 {
        let idx = t.saturating_sub(1).min(self.smt_gain.len() - 1);
        self.smt_gain[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let s = MachineConfig::summit_cuda();
        assert_eq!(s.gpus, 6);
        assert!(s.gpu.has_hw_f64_atomics);
        let k = MachineConfig::summit_kokkos();
        assert!(k.lang_efficiency < s.lang_efficiency);
        assert!(k.host_overhead > 1.0);
        let sp = MachineConfig::spock_kokkos_hip();
        assert!(!sp.gpu.has_hw_f64_atomics);
        assert!(sp.atomic_penalty_s > 0.0);
        let f = MachineConfig::fugaku_kokkos_omp();
        assert_eq!(f.gpus, 0);
    }

    #[test]
    fn smt_gains_saturate() {
        let s = MachineConfig::summit_cuda();
        assert_eq!(s.smt(1), 1.0);
        assert!(s.smt(2) > s.smt(1));
        assert!(s.smt(3) >= s.smt(2));
        assert_eq!(s.smt(4), s.smt(9)); // clamped
    }

    #[test]
    fn kernel_rates_are_far_below_peak() {
        // The Landau kernel on this problem size is latency-bound: the
        // calibrated sustained rate is a small fraction of the 7.8 TF peak.
        let s = MachineConfig::summit_cuda();
        assert!(s.gpu_kernel_gflops * 1e9 < 0.1 * s.gpu.peak_fp64_gflops * 1e9);
    }
}
