//! A small deterministic property-testing harness.
//!
//! The workspace test suites exercise randomized properties (reduction
//! invariance, solver agreement, mesh continuity) without any external
//! crates: [`Rng`] is a splitmix64 generator, and [`cases`] runs a property
//! over a fixed number of derived seeds, reporting the failing seed so a
//! case can be replayed exactly (`Rng::new(seed)`).
//!
//! Unlike proptest there is no shrinking: generators here are simple enough
//! that the printed seed plus the case index identifies the failure.

/// Deterministic pseudo-random generator (splitmix64).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded generator; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit_f64()
    }

    /// Uniform integer in `[lo, hi)` (half-open; `hi > lo`).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform `u64` in `[0, n)`.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Vector of `n` uniform values in `[lo, hi)`.
    pub fn vec_f64(&mut self, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|_| self.f64_in(lo, hi)).collect()
    }
}

/// Run `body` for `n` cases with independent deterministic seeds.
///
/// The case index doubles as the seed base, so a failure message like
/// `property case 17` replays with `Rng::new(mix(17))` — use
/// [`case_rng`] to rebuild the generator.
pub fn cases(n: usize, mut body: impl FnMut(&mut Rng, usize)) {
    for case in 0..n {
        let mut rng = case_rng(case);
        body(&mut rng, case);
    }
}

/// The generator used for case `case` by [`cases`].
pub fn case_rng(case: usize) -> Rng {
    Rng::new((case as u64).wrapping_mul(0xA076_1D64_78BD_642F) ^ 0x2545_F491_4F6C_DD1D)
}

/// Assert with the failing case index in the panic message.
#[macro_export]
macro_rules! prop_assert {
    ($case:expr, $cond:expr $(, $fmt:expr $(, $args:expr)*)?) => {
        assert!(
            $cond,
            concat!("property case {}: ", $($fmt)?),
            $case $($(, $args)*)?
        );
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = Rng::new(43);
        assert_ne!(a[0], r.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let x = r.f64_in(-2.5, 3.5);
            assert!((-2.5..3.5).contains(&x));
            let k = r.usize_in(3, 9);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn unit_values_fill_the_interval() {
        let mut r = Rng::new(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..4000 {
            let x = r.unit_f64();
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "lo={lo} hi={hi}");
    }

    #[test]
    fn cases_runs_every_index() {
        let mut seen = Vec::new();
        cases(5, |_rng, i| seen.push(i));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }
}
