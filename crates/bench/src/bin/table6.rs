//! Table VI: Jacobian construction and total time on one Fugaku node
//! (A64FX, Kokkos-OpenMP) for the 10-step run, vs MPI processes × OpenMP
//! threads, plus the total solve time on the 32-core diagonal.

use landau_bench::{measured_profile, perf_operator, print_table};
use landau_core::operator::Backend;
use landau_hwsim::{des::simulate_cpu_node, MachineConfig};

fn main() {
    let mut op = perf_operator(80, Backend::KokkosModel);
    let profile = measured_profile(&mut op);
    let m = MachineConfig::fugaku_kokkos_omp();
    // 10-step run ≈ 208 Newton iterations per process.
    let iters = 208u64;
    let procs = [4usize, 8, 16, 32];
    let threads = [8usize, 4, 2, 1];
    let mut rows = Vec::new();
    for &p in &procs {
        let mut vals = Vec::new();
        for &t in &threads {
            if p * t <= 32 {
                let r = simulate_cpu_node(&m, &profile, p, t, iters);
                // Per-process Jacobian construction time (Landau kernel).
                vals.push(format!("{:.1}", r.t_kernel));
            } else {
                vals.push("-".into());
            }
        }
        // Total time of the p × (32/p) configuration (the diagonal).
        let t_diag = 32 / p;
        let r = simulate_cpu_node(&m, &profile, p, t_diag, iters);
        vals.push(format!("{:.1}", r.t_total));
        rows.push((format!("{p} proc"), vals));
    }
    print_table(
        "Table VI — Fugaku Jacobian construction (s) and total (s), 10-step run \
         (paper diag: 19.3/38.1/75.5/150; totals 25.1/45.9/87.0/169.4)",
        "threads →",
        &[
            "8".into(),
            "4".into(),
            "2".into(),
            "1".into(),
            "Total".into(),
        ],
        &rows,
    );
    let r = simulate_cpu_node(&m, &profile, 4, 8, iters);
    println!(
        "throughput at 4 proc × 8 thr: {:.0} Newton it/s (paper: 39)",
        r.newton_per_sec
    );
}
