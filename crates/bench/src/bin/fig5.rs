//! Figure 5: thermal-quench profiles n_e, J, E, T_e vs time (CSV to stdout
//! plus a summary), exported as a step-level timeseries artifact
//! (`FIG5_timeseries.json`) carrying the physics channels *and* the
//! conservation-monitor drift channels for every step.

use landau_bench::workspace_root;
use landau_core::invariants::Watchdog;
use landau_core::operator::Backend;
use landau_quench::{QuenchConfig, QuenchDriver};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        QuenchConfig {
            ion_mass: 16.0,
            cells_per_vt: 0.75,
            k_outer: 2.2,
            domain: 4.5,
            t_cold: 0.15,
            mass_factor: 3.0,
            pulse_duration: 3.0,
            max_equil_steps: 16,
            quench_steps: 24,
            backend: Backend::Cpu,
            ..Default::default()
        }
    } else {
        QuenchConfig {
            ion_mass: 400.0,
            quench_steps: 80,
            ..Default::default()
        }
    };
    let mut d = QuenchDriver::new(QuenchConfig {
        monitor: Some(Watchdog::recording()),
        ..cfg
    });
    eprintln!(
        "mesh: {} Q3 cells, {} dofs/species",
        d.ti().op.space.n_elements(),
        d.ti().op.n()
    );
    if let Err(e) = d.run() {
        eprintln!("quench run failed: {e}");
        eprintln!("(samples up to the failure follow)");
    }
    let ts = d.series.snapshot();
    let out = workspace_root().join("FIG5_timeseries.json");
    std::fs::write(&out, ts.to_json_text()).expect("write FIG5_timeseries.json");
    eprintln!(
        "wrote {} ({} records, {} channels)",
        out.display(),
        ts.len(),
        ts.channels().len()
    );
    println!("t,n_e,J,E,T_e,tail_2v,phase");
    for s in &d.samples {
        println!(
            "{:.3},{:.5},{:.5e},{:.5e},{:.4},{:.4e},{}",
            s.t,
            s.n_e,
            s.j,
            s.e,
            s.t_e,
            s.tail_2v,
            if s.quenching { "quench" } else { "equil" }
        );
    }
    let pre = d.samples.iter().rfind(|s| !s.quenching).unwrap();
    let last = d.samples.last().unwrap();
    let emax = d.samples.iter().map(|s| s.e).fold(0.0f64, f64::max);
    eprintln!("\nFigure 5 summary (expected dynamics, §IV-C):");
    eprintln!("  n_e: 1.0 -> {:.2} (prescribed source integral)", last.n_e);
    eprintln!(
        "  T_e: {:.2} -> {:.3} (thermal collapse)",
        pre.t_e, last.t_e
    );
    eprintln!(
        "  E:   {:.3e} -> peak {:.3e} (Spitzer feedback)",
        pre.e, emax
    );
    eprintln!("  J:   {:.3e} -> {:.3e} (slower decay)", pre.j, last.j);
    eprintln!("  newton iters total: {}", d.stats.newton_iters);
}
