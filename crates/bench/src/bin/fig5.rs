//! Figure 5: thermal-quench profiles n_e, J, E, T_e vs time (CSV to stdout
//! plus a summary), exported as a step-level timeseries artifact
//! (`FIG5_timeseries.json`) carrying the physics channels *and* the
//! conservation-monitor drift channels for every step.
//!
//! Checkpoint/restart flags (the kill–resume smoke in `ci.sh`):
//!   `--ckpt <dir>`   checkpoint every 2 steps (+ phase changes) into `dir`;
//!   `--kill-at <n>`  stop after `n` steps without writing the artifact;
//!   `--resume <dir>` restore the newest good generation from `dir`, keep
//!                    checkpointing there, and run to completion — the
//!                    resulting `FIG5_timeseries.json` is byte-identical
//!                    to an uninterrupted run's.

use landau_bench::workspace_root;
use landau_core::ckpt::{CheckpointPolicy, DirStorage};
use landau_core::invariants::Watchdog;
use landau_core::operator::Backend;
use landau_quench::{QuenchConfig, QuenchDriver, RunOutcome};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ckpt_dir = arg_value("--ckpt");
    let resume_dir = arg_value("--resume");
    let kill_at: Option<u64> = arg_value("--kill-at").map(|s| s.parse().expect("--kill-at <n>"));
    let cfg = if quick {
        QuenchConfig {
            ion_mass: 16.0,
            cells_per_vt: 0.75,
            k_outer: 2.2,
            domain: 4.5,
            t_cold: 0.15,
            mass_factor: 3.0,
            pulse_duration: 3.0,
            max_equil_steps: 16,
            quench_steps: 24,
            backend: Backend::Cpu,
            ..Default::default()
        }
    } else {
        QuenchConfig {
            ion_mass: 400.0,
            quench_steps: 80,
            ..Default::default()
        }
    };
    let mut d = QuenchDriver::new(QuenchConfig {
        monitor: Some(Watchdog::recording()),
        ..cfg
    });
    eprintln!(
        "mesh: {} Q3 cells, {} dofs/species",
        d.ti().op.space.n_elements(),
        d.ti().op.n()
    );
    if let Some(dir) = resume_dir.clone().or(ckpt_dir) {
        let storage = DirStorage::new(&dir).expect("checkpoint dir");
        d.enable_checkpointing(
            Box::new(storage),
            2,
            CheckpointPolicy::every_steps(2).and_on_phase_change(),
        );
    }
    if resume_dir.is_some() {
        let found = d
            .resume_from_checkpoint()
            .expect("checkpoint failed validation");
        assert!(found, "--resume given but no checkpoint generation found");
        eprintln!("resumed from checkpoint at step {}", d.completed_steps());
    }
    let outcome = if let Some(n) = kill_at {
        d.run_budgeted(Some(n)).map_err(|e| {
            eprintln!("quench run failed: {e}");
            eprintln!("(samples up to the failure follow)");
        })
    } else {
        d.run().map(|()| RunOutcome::Completed).map_err(|e| {
            eprintln!("quench run failed: {e}");
            eprintln!("(samples up to the failure follow)");
        })
    };
    if outcome == Ok(RunOutcome::Paused) {
        eprintln!(
            "killed at step {} (last checkpoint is durable); continue with --resume <dir>",
            d.completed_steps()
        );
        return;
    }
    let ts = d.series.snapshot();
    let out = workspace_root().join("FIG5_timeseries.json");
    std::fs::write(&out, ts.to_json_text()).expect("write FIG5_timeseries.json");
    eprintln!(
        "wrote {} ({} records, {} channels)",
        out.display(),
        ts.len(),
        ts.channels().len()
    );
    println!("t,n_e,J,E,T_e,tail_2v,phase");
    for s in &d.samples {
        println!(
            "{:.3},{:.5},{:.5e},{:.5e},{:.4},{:.4e},{}",
            s.t,
            s.n_e,
            s.j,
            s.e,
            s.t_e,
            s.tail_2v,
            if s.quenching { "quench" } else { "equil" }
        );
    }
    let pre = d.samples.iter().rfind(|s| !s.quenching).unwrap();
    let last = d.samples.last().unwrap();
    let emax = d.samples.iter().map(|s| s.e).fold(0.0f64, f64::max);
    eprintln!("\nFigure 5 summary (expected dynamics, §IV-C):");
    eprintln!("  n_e: 1.0 -> {:.2} (prescribed source integral)", last.n_e);
    eprintln!(
        "  T_e: {:.2} -> {:.3} (thermal collapse)",
        pre.t_e, last.t_e
    );
    eprintln!(
        "  E:   {:.3e} -> peak {:.3e} (Spitzer feedback)",
        pre.e, emax
    );
    eprintln!("  J:   {:.3e} -> {:.3e} (slower decay)", pre.j, last.j);
    eprintln!("  newton iters total: {}", d.stats.newton_iters);
}
