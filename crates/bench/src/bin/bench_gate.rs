//! Bench-regression gate: compare freshly emitted `BENCH_*.json` files at
//! the workspace root against the committed `baselines/*.json`, with a
//! per-metric rule set, and fail loudly on any regression.
//!
//! Run after the quick benches have produced fresh outputs:
//! `cargo bench -q -p landau-bench --bench tensor_cache -- --quick`
//! `cargo bench -q -p landau-bench --bench resilience -- --quick`
//! `cargo run -q --release -p landau-bench --bin bench_gate`
//!
//! Rules (see `rule_for`):
//!   * **exact** — structural invariants that must never drift (step
//!     counts, bitwise flags, byte totals of deterministic structures);
//!   * **reltol** — counts that vary with FP association across machines
//!     (Newton iterations depend on thread count) within a band;
//!   * **ceiling / floor** — absolute bounds on the fresh value, with the
//!     baseline shown for context (overhead fractions, cache speedup);
//!   * **zero** — hard gates that must be exactly 0 on the fresh side
//!     (static-verifier violations and corpus misses: any nonzero value
//!     means a kernel defect or a broken verifier);
//!   * **info** — reported but never gating (raw seconds, iters/sec: too
//!     machine-dependent to compare across hosts).
//!
//! A metric present in the baseline but missing from the fresh run — or
//! vice versa — is always a failure: schema drift must be deliberate
//! (regenerate the baseline, see `baselines/README.md`).

use landau_bench::workspace_root;
use landau_obs::json::Json;
use std::collections::BTreeMap;
use std::process::exit;

enum Rule {
    /// Bitwise-equal f64 (both sides round-trip through Rust's shortest
    /// float formatting, so equality is meaningful).
    Exact,
    /// |fresh − base| ≤ tol · |base|.
    RelTol(f64),
    /// fresh < limit, regardless of baseline.
    Ceiling(f64),
    /// fresh ≥ limit, regardless of baseline.
    Floor(f64),
    /// fresh must be exactly 0, regardless of baseline (hard gates like
    /// verifier violation counts, where any nonzero value is a defect).
    Zero,
    /// Reported only.
    Info,
}

fn rule_for(name: &str) -> Rule {
    match name {
        "steps"
        | "bitwise_identical"
        | "obs_bitwise_identical"
        | "monitor_bitwise_identical"
        | "batch_bitwise_identical"
        | "ckpt_bitwise_identical"
        | "resume_bitwise_identical"
        | "ckpt_frame_bytes"
        | "invariant.violations"
        | "table_bytes"
        | "space_heap_bytes"
        | "batch256_bytes_saved" => Rule::Exact,
        "newton_iters" => Rule::RelTol(0.25),
        // Recovered-attempt counts track Newton behaviour, which shifts
        // with FP association across hosts; the bench itself asserts > 0.
        "retried_attempts" => Rule::RelTol(1.0),
        // The quench step count depends on the quasi-equilibrium detector,
        // which can fire a step early/late across hosts.
        "invariant.steps" => Rule::RelTol(0.25),
        // The span/metric recording, the conservation monitor, the
        // per-step checkpoint writer and the event journal must each
        // cost under 2% on the guarded solve (min-of-3 ABAB
        // measurements).
        "obs_overhead_frac"
        | "monitor_overhead_frac"
        | "ckpt_overhead_frac"
        | "obs.journal_overhead_frac" => Rule::Ceiling(0.02),
        // Any byte flip slipping past the frame checksums is a durability
        // defect — the corruption matrix gates at exactly zero.
        "ckpt_silent_restores" => Rule::Zero,
        // Raw write latency is machine-dependent.
        "ckpt_write_ms" => Rule::Info,
        // Physics telemetry acceptance: accounted mass/momentum/energy
        // drift through the monitored quick quench stays at roundoff.
        n if n.starts_with("invariant.") && n.ends_with(".drift_max") => Rule::Ceiling(1e-10),
        // Entropy production (σ, source flux accounted) is asserted
        // non-negative inside the bench; its magnitude is informational.
        "invariant.entropy.production_drop_max" | "entropy_production_min" => Rule::Info,
        // The static kernel verifier: no proof violation and no missed
        // corpus defect, ever — these gate at exactly zero.
        "verify.violations" | "verify.corpus_missed" => Rule::Zero,
        "overhead_frac" => Rule::Ceiling(0.25),
        // -- landau-serve load test (BENCH_serve.json) ------------------
        // Structural: the quick load test always runs the same flood, and
        // every job must complete; the kill–resume probe must be bitwise.
        "serve.jobs_total" | "serve.jobs_completed" | "serve.tenants" => Rule::Exact,
        "serve.resume_bitwise_identical" => Rule::Floor(1.0),
        // Latency ceilings: ~3× the single-core measurement (p50 ≈ 6 s
        // with a 24-deep admission window on one core), absolute so a
        // scheduling regression fails even if the baseline drifts with it.
        "serve.p50_submit_to_first_ms" | "serve.p50_e2e_ms" => Rule::Ceiling(20_000.0),
        "serve.p99_submit_to_first_ms" | "serve.p99_e2e_ms" => Rule::Ceiling(30_000.0),
        // Throughput floor: the quick flood sustains ≈ 3.9 jobs/s on one
        // core; 1.0 is the "something is badly wrong" line.
        "serve.throughput_jobs_per_sec" => Rule::Floor(1.0),
        // Equal quotas and identical job mixes must spread slices evenly;
        // the measured spread is 0.00 and anything above 0.5 means the
        // fair scheduler is not doing its job.
        "serve.fairness_spread" => Rule::Ceiling(0.5),
        // Rejection volume depends on arrival timing — informational.
        "serve.rejected_jobs" => Rule::Info,
        // -- live telemetry plane (BENCH_obs_live.json) -----------------
        // Journal publishing must be pure observation: the enabled and
        // disabled arms land on the same bits, and every scrape under
        // load parses as OpenMetrics.
        "obs.journal_bitwise_identical" | "obs.scrape_valid" => Rule::Floor(1.0),
        // Scrape wall time against a warm registry: the measured p99 is
        // well under a millisecond; 250 ms is the "the scrape path grew
        // a registry copy or allocation storm" line, absolute so a
        // regression fails even if the baseline drifts with it.
        "serve.scrape_p99_ms" => Rule::Ceiling(250.0),
        // Event volume tracks checkpoint cadence, which shifts with the
        // quick/full shape — informational.
        "obs.journal_events_published" => Rule::Info,
        // Fused-batch speedup over the host loop must hold its 2× floor at
        // the large batch sizes (the tentpole acceptance); small batches
        // can't amortize and are informational.
        "speedup" | "speedup_256" | "speedup_1024" => Rule::Floor(2.0),
        n if n.starts_with("verify_rel_diff_") => Rule::Ceiling(1e-13),
        _ => Rule::Info,
    }
}

fn load(path: &std::path::Path) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e} (run the quick benches first?)", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: {e:?}", path.display()))?;
    let obj = doc
        .as_obj()
        .ok_or_else(|| format!("{}: top level is not an object", path.display()))?;
    let mut out = BTreeMap::new();
    for (k, v) in obj {
        let num = v
            .as_f64()
            .ok_or_else(|| format!("{}: metric {k} is not a number", path.display()))?;
        out.insert(k.clone(), num);
    }
    Ok(out)
}

/// Compare one baseline/fresh pair; returns the number of failures.
fn compare(name: &str, base: &BTreeMap<String, f64>, fresh: &BTreeMap<String, f64>) -> usize {
    println!("\n== {name}");
    println!(
        "{:<28} {:>14} {:>14} {:>9}  verdict",
        "metric", "baseline", "fresh", "Δ%"
    );
    let mut failures = 0;
    let keys: std::collections::BTreeSet<&String> = base.keys().chain(fresh.keys()).collect();
    for key in keys {
        let (b, f) = (base.get(key.as_str()), fresh.get(key.as_str()));
        let (b, f) = match (b, f) {
            (Some(&b), Some(&f)) => (b, f),
            (Some(&b), None) => {
                println!(
                    "{key:<28} {b:>14.6e} {:>14} {:>9}  FAIL missing from fresh run",
                    "-", "-"
                );
                failures += 1;
                continue;
            }
            (None, Some(&f)) => {
                println!(
                    "{key:<28} {:>14} {f:>14.6e} {:>9}  FAIL not in baseline",
                    "-", "-"
                );
                failures += 1;
                continue;
            }
            (None, None) => unreachable!(),
        };
        let delta_pct = if b != 0.0 {
            format!("{:+.1}", 100.0 * (f - b) / b.abs())
        } else {
            "-".to_string()
        };
        let (ok, verdict) = match rule_for(key) {
            Rule::Exact => (f == b, "exact".to_string()),
            Rule::RelTol(tol) => ((f - b).abs() <= tol * b.abs(), format!("reltol {tol:.2}")),
            Rule::Ceiling(lim) => (f < lim, format!("< {lim:e}")),
            Rule::Floor(lim) => (f >= lim, format!(">= {lim}")),
            Rule::Zero => (f == 0.0, "exactly 0".to_string()),
            Rule::Info => (true, "info".to_string()),
        };
        println!(
            "{key:<28} {b:>14.6e} {f:>14.6e} {delta_pct:>9}  {}{verdict}",
            if ok { "" } else { "FAIL " }
        );
        if !ok {
            failures += 1;
        }
    }
    failures
}

fn main() {
    let root = workspace_root();
    let pairs = [
        ("BENCH_resilience.json", "resilience"),
        ("BENCH_tensor_cache.json", "tensor_cache"),
        ("BENCH_invariants.json", "invariants"),
        ("BENCH_verify.json", "verify"),
        ("BENCH_batch_scaling.json", "batch_scaling"),
        ("BENCH_serve.json", "serve"),
        ("BENCH_obs_live.json", "obs_live"),
    ];
    let mut failures = 0;
    for (file, name) in pairs {
        let base = match load(&root.join("baselines").join(file)) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("bench_gate: baseline error: {e}");
                exit(2);
            }
        };
        let fresh = match load(&root.join(file)) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("bench_gate: {e}");
                exit(2);
            }
        };
        failures += compare(name, &base, &fresh);
    }
    if failures > 0 {
        eprintln!("\nbench_gate: {failures} metric(s) FAILED against baselines/");
        eprintln!("If the change is intentional, regenerate: see baselines/README.md");
        exit(1);
    }
    println!("\nbench_gate: all metrics within tolerance");
}
