//! Mesh-adaptivity ablation (§III-B): cost of the Landau operator on an
//! adapted mesh vs a uniform mesh at matched finest resolution — the
//! paper's motivation for AMR ("this cost is a function of the desired
//! accuracy; high accuracy and large domain size benefit more").

use landau_bench::print_table;
use landau_core::species::Species;
use landau_fem::FemSpace;
use landau_mesh::presets::{uniform_mesh, MeshSpec, RefineShell};

fn main() {
    let e = Species::electron();
    let vt = e.thermal_speed();
    let mut rows = Vec::new();
    for levels in [3usize, 4, 5] {
        // Adapted: finest cells (at level `levels`) only inside ~1.5 v_th.
        let h_min = 5.0 * vt / (1 << levels) as f64;
        let adapted = MeshSpec {
            domain_radius: 5.0 * vt,
            base_level: 1,
            shells: vec![
                RefineShell {
                    radius: 2.6 * vt,
                    max_cell_size: 4.0 * h_min,
                },
                RefineShell {
                    radius: 1.5 * vt,
                    max_cell_size: h_min,
                },
            ],
            tail_box: None,
        }
        .build();
        let uniform = uniform_mesh(5.0 * vt, levels);
        let sa = FemSpace::new(adapted, 3);
        let su = FemSpace::new(uniform, 3);
        // Landau cost scales like N²: report the tensor-evaluation ratio.
        let ratio = (su.n_ip() as f64 / sa.n_ip() as f64).powi(2);
        rows.push((
            format!("level {levels}"),
            vec![
                format!("{}", sa.n_elements()),
                format!("{}", su.n_elements()),
                format!("{:.1}x", su.n_elements() as f64 / sa.n_elements() as f64),
                format!("{:.0}x", ratio),
            ],
        ));
    }
    print_table(
        "AMR ablation — adapted vs uniform at matched finest cell (paper §III-H: 20 vs 128 cells, 6.4x)",
        "finest level",
        &["adapted cells".into(), "uniform cells".into(), "cell ratio".into(), "O(N²) ratio".into()],
        &rows,
    );
}
