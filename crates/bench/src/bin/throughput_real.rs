//! Real measured throughput of the batched collision advance on *this*
//! machine — the honest companion to the modeled Tables II–VIII: same
//! figure of merit (Newton iterations/second), real wall clock, scaling
//! over the batch size (the paper's conclusion proposes exactly this
//! batching to replace the MPI harness).

use landau_bench::print_table;
use landau_core::batch::BatchedAdvance;
use landau_core::operator::Backend;
use landau_core::species::SpeciesList;
use landau_fem::FemSpace;
use landau_mesh::presets::{MeshSpec, RefineShell};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // A small vertex problem (applications run thousands of these).
    let space = FemSpace::new(
        MeshSpec {
            domain_radius: 4.0,
            base_level: 1,
            shells: vec![RefineShell {
                radius: 1.5,
                max_cell_size: 1.0,
            }],
            tail_box: None,
        }
        .build(),
        3,
    );
    let species = SpeciesList::new(vec![
        landau_core::species::Species::electron(),
        landau_core::species::Species {
            name: "i+".into(),
            mass: 2.0,
            charge: 1.0,
            density: 1.0,
            temperature: 0.7,
        },
    ]);
    println!(
        "vertex problem: {} Q3 cells, {} dofs/species, {} threads available",
        space.n_elements(),
        space.n_dofs,
        landau_par::current_num_threads()
    );
    let sizes: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8, 16] };
    let steps = if quick { 1 } else { 2 };
    let mut rows = Vec::new();
    for &nv in sizes {
        for backend in [Backend::Cpu, Backend::CudaModel] {
            let mut b = BatchedAdvance::new(&space, &species, backend, nv);
            let st = b.advance(0.5, steps, 0.0);
            rows.push((
                format!("{nv} vtx {backend:?}"),
                vec![
                    format!("{}", st.newton_iters),
                    format!("{:.2}", st.seconds),
                    format!("{:.1}", st.newton_per_sec),
                ],
            ));
        }
    }
    print_table(
        "Real batched-advance throughput on this machine (Newton it/s)",
        "batch",
        &["iters".into(), "seconds".into(), "it/s".into()],
        &rows,
    );
}
