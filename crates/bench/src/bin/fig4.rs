//! Figure 4: calculated η = E/J vs the Spitzer η as a function of the ion
//! effective charge Z.
//!
//! Full mode sweeps Z ∈ {1, 2, 4, …, 128} with a heavy ion; `--quick`
//! uses lighter ions and fewer steps (single-core friendly).
//!
//! Checkpoint/restart flags: the sweep checkpoints per completed Z point
//! (each point is an independent deterministic run, so the sweep prefix is
//! the natural restart unit).
//!   `--ckpt <dir>`   checkpoint after every Z point into `dir`;
//!   `--kill-at <k>`  stop after `k` Z points without writing the artifact;
//!   `--resume <dir>` restore the completed prefix from `dir` and finish
//!                    the sweep — `FIG4_timeseries.json` comes out
//!                    byte-identical to an uninterrupted run's.

use landau_bench::{print_table, workspace_root};
use landau_core::ckpt::{ByteReader, ByteWriter, CheckpointStore, DirStorage};
use landau_core::operator::Backend;
use landau_obs::timeseries::{Record, SeriesSink, TimeSeries};
use landau_quench::{measure_resistivity, ResistivityConfig};

const FIG4_CKPT_VERSION: u32 = 1;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Serialize the sweep prefix: next Z index, running step counter, table
/// rows, and the timeseries so far (as its canonical JSON text).
fn encode_sweep(
    next_z: usize,
    step: u64,
    rows: &[(String, Vec<String>)],
    ts: &TimeSeries,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(FIG4_CKPT_VERSION);
    w.put_u64(next_z as u64);
    w.put_u64(step);
    w.put_u64(rows.len() as u64);
    for (label, cells) in rows {
        w.put_str(label);
        w.put_u64(cells.len() as u64);
        for c in cells {
            w.put_str(c);
        }
    }
    w.put_str(&ts.to_json_text());
    w.into_bytes()
}

fn decode_sweep(payload: &[u8]) -> (usize, u64, Vec<(String, Vec<String>)>, TimeSeries) {
    let mut r = ByteReader::new(payload);
    let version = r.get_u32().expect("sweep checkpoint version");
    assert_eq!(version, FIG4_CKPT_VERSION, "incompatible sweep checkpoint");
    let next_z = r.get_u64().expect("z index") as usize;
    let step = r.get_u64().expect("step counter");
    let n_rows = r.get_u64().expect("row count") as usize;
    let mut rows = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let label = r.get_str().expect("row label");
        let n_cells = r.get_u64().expect("cell count") as usize;
        let cells = (0..n_cells)
            .map(|_| r.get_str().expect("row cell"))
            .collect();
        rows.push((label, cells));
    }
    let ts_text = r.get_str().expect("timeseries text");
    let ts = TimeSeries::parse(&ts_text).expect("timeseries in checkpoint");
    r.finish().expect("trailing bytes in sweep checkpoint");
    (next_z, step, rows, ts)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ckpt_dir = arg_value("--ckpt");
    let resume_dir = arg_value("--resume");
    let kill_at: Option<usize> = arg_value("--kill-at").map(|s| s.parse().expect("--kill-at <k>"));
    // Quick mode stops at Z=8: the Z=16 light-ion/coarse-mesh combination
    // stalls the quasi-Newton short of the tight resistivity tolerance.
    let zs: Vec<f64> = if quick {
        vec![1.0, 2.0, 4.0, 8.0]
    } else {
        vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]
    };
    let mut store = resume_dir.clone().or(ckpt_dir).map(|dir| {
        CheckpointStore::new(Box::new(DirStorage::new(&dir).expect("checkpoint dir")), 2)
    });
    let mut rows: Vec<(String, Vec<String>)> = Vec::new();
    // One timeseries over the whole sweep: consecutive step indices, with
    // the sweep coordinate carried as a `z` channel per record.
    let sink = SeriesSink::new();
    let mut step = 0u64;
    let mut start = 0usize;
    if resume_dir.is_some() {
        let loaded = store
            .as_mut()
            .expect("--resume sets a store")
            .load_latest()
            .expect("checkpoint failed validation")
            .expect("--resume given but no checkpoint generation found");
        let (next_z, st, rs, ts) = decode_sweep(&loaded.payload);
        start = next_z;
        step = st;
        rows = rs;
        for rec in ts.records() {
            sink.push(rec.clone());
        }
        eprintln!(
            "resumed sweep at Z index {start} ({} rows, {} records restored)",
            rows.len(),
            sink.snapshot().len()
        );
    }
    for (zi, &z) in zs.iter().enumerate().skip(start) {
        let cfg = ResistivityConfig {
            z,
            // Heavy-ion limit; mass grows ∝ Z like the paper's effective
            // ionization states of one nucleus.
            ion_mass: if quick { 16.0 * z } else { 400.0 * z },
            cells_per_vt: if quick { 0.75 } else { 1.0 },
            k_outer: if quick { 2.2 } else { 3.0 },
            domain: 4.5,
            // e–i collisionality scales like Z²: shrink the step and keep
            // the drive measurable.
            dt: 0.5 / z.sqrt(),
            max_steps: if quick { 30 } else { 60 },
            rtol: if quick { 1e-6 } else { 1e-8 },
            atol: if quick { 1e-8 } else { 1e-12 },
            e_field: 0.02 * z.sqrt(),
            backend: Backend::Cpu,
            ..Default::default()
        };
        let run = measure_resistivity(&cfg);
        for &(t, j, eta) in &run.history {
            sink.push(
                Record::new(step, t, cfg.dt)
                    .with("z", z)
                    .with("j_z", j)
                    .with("eta", eta)
                    .with("eta_spitzer", run.eta_spitzer),
            );
            step += 1;
        }
        rows.push((
            format!("Z={z}"),
            vec![
                format!("{:.3}", run.eta_measured),
                format!("{:.3}", run.eta_spitzer),
                format!("{:+.1}%", 100.0 * run.relative_error()),
                format!("{}", run.steps),
                if run.converged {
                    "yes".into()
                } else {
                    "no".into()
                },
            ],
        ));
        eprintln!(
            "Z={z}: η={:.4} spitzer={:.4} ({} steps)",
            run.eta_measured, run.eta_spitzer, run.steps
        );
        if let Some(store) = store.as_mut() {
            let payload = encode_sweep(zi + 1, step, &rows, &sink.snapshot());
            store.save(&payload).expect("sweep checkpoint write");
        }
        if kill_at == Some(zi + 1) && zi + 1 < zs.len() {
            eprintln!(
                "killed after {} of {} sweep points (last checkpoint is durable); \
                 continue with --resume <dir>",
                zi + 1,
                zs.len()
            );
            return;
        }
    }
    let ts = sink.snapshot();
    let out = workspace_root().join("FIG4_timeseries.json");
    std::fs::write(&out, ts.to_json_text()).expect("write FIG4_timeseries.json");
    eprintln!("wrote {} ({} records)", out.display(), ts.len());
    print_table(
        "Figure 4 — η = E/J vs Spitzer η (paper: tracks Spitzer, ~1% low at Z=1; Z=128 under-converged)",
        "Z",
        &["η measured".into(), "η Spitzer".into(), "rel err".into(), "steps".into(), "converged".into()],
        &rows,
    );
}
