//! Figure 4: calculated η = E/J vs the Spitzer η as a function of the ion
//! effective charge Z.
//!
//! Full mode sweeps Z ∈ {1, 2, 4, …, 128} with a heavy ion; `--quick`
//! uses lighter ions and fewer steps (single-core friendly).

use landau_bench::{print_table, workspace_root};
use landau_core::operator::Backend;
use landau_obs::timeseries::{Record, SeriesSink};
use landau_quench::{measure_resistivity, ResistivityConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mode stops at Z=8: the Z=16 light-ion/coarse-mesh combination
    // stalls the quasi-Newton short of the tight resistivity tolerance.
    let zs: Vec<f64> = if quick {
        vec![1.0, 2.0, 4.0, 8.0]
    } else {
        vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]
    };
    let mut rows = Vec::new();
    // One timeseries over the whole sweep: consecutive step indices, with
    // the sweep coordinate carried as a `z` channel per record.
    let sink = SeriesSink::new();
    let mut step = 0u64;
    for &z in &zs {
        let cfg = ResistivityConfig {
            z,
            // Heavy-ion limit; mass grows ∝ Z like the paper's effective
            // ionization states of one nucleus.
            ion_mass: if quick { 16.0 * z } else { 400.0 * z },
            cells_per_vt: if quick { 0.75 } else { 1.0 },
            k_outer: if quick { 2.2 } else { 3.0 },
            domain: 4.5,
            // e–i collisionality scales like Z²: shrink the step and keep
            // the drive measurable.
            dt: 0.5 / z.sqrt(),
            max_steps: if quick { 30 } else { 60 },
            rtol: if quick { 1e-6 } else { 1e-8 },
            atol: if quick { 1e-8 } else { 1e-12 },
            e_field: 0.02 * z.sqrt(),
            backend: Backend::Cpu,
            ..Default::default()
        };
        let run = measure_resistivity(&cfg);
        for &(t, j, eta) in &run.history {
            sink.push(
                Record::new(step, t, cfg.dt)
                    .with("z", z)
                    .with("j_z", j)
                    .with("eta", eta)
                    .with("eta_spitzer", run.eta_spitzer),
            );
            step += 1;
        }
        rows.push((
            format!("Z={z}"),
            vec![
                format!("{:.3}", run.eta_measured),
                format!("{:.3}", run.eta_spitzer),
                format!("{:+.1}%", 100.0 * run.relative_error()),
                format!("{}", run.steps),
                if run.converged {
                    "yes".into()
                } else {
                    "no".into()
                },
            ],
        ));
        eprintln!(
            "Z={z}: η={:.4} spitzer={:.4} ({} steps)",
            run.eta_measured, run.eta_spitzer, run.steps
        );
    }
    let ts = sink.snapshot();
    let out = workspace_root().join("FIG4_timeseries.json");
    std::fs::write(&out, ts.to_json_text()).expect("write FIG4_timeseries.json");
    eprintln!("wrote {} ({} records)", out.display(), ts.len());
    print_table(
        "Figure 4 — η = E/J vs Spitzer η (paper: tracks Spitzer, ~1% low at Z=1; Z=128 under-converged)",
        "Z",
        &["η measured".into(), "η Spitzer".into(), "rel err".into(), "steps".into(), "converged".into()],
        &rows,
    );
}
