//! Table III: Kokkos-CUDA back-end throughput on one Summit node.

use landau_bench::{measured_profile, perf_operator, print_table};
use landau_core::operator::Backend;
use landau_hwsim::{simulate_node, MachineConfig};

fn main() {
    let mut op = perf_operator(80, Backend::KokkosModel);
    let profile = measured_profile(&mut op);
    let m = MachineConfig::summit_kokkos();
    let cores = [1usize, 2, 3, 5, 7];
    let ppc = [1usize, 2, 3];
    let rows: Vec<(String, Vec<String>)> = ppc
        .iter()
        .map(|&p| {
            let vals = cores
                .iter()
                .map(|&c| {
                    let r = simulate_node(&m, &profile, c, p, 60);
                    format!("{:.0}", r.newton_per_sec)
                })
                .collect();
            (format!("{p} proc/core"), vals)
        })
        .collect();
    print_table(
        "Table III — Kokkos-CUDA, V100 iterations/sec (paper row 1: 792..4849; row 3: 1010..6193)",
        "cores/GPU →",
        &cores.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        &rows,
    );
}
