//! Export the merged span forest of an instrumented solver workload as
//! a Chrome Trace Format document (`trace.json`, loadable in
//! `chrome://tracing` or Perfetto) plus folded flamegraph stacks
//! (`trace.folded`, `flamegraph.pl`-compatible).
//!
//! By default the export is *deterministic*: every timestamp is
//! synthetic (derived from the forest shape) and wall-clock totals are
//! zeroed, so two runs of the same workload produce byte-identical
//! artifacts. Pass `--wall` to carry the measured aggregate nanoseconds
//! in each event's `args.total_ns` instead.

use landau_bench::{perf_operator, workspace_root};
use landau_core::operator::Backend;
use landau_core::solver::{ThetaMethod, TimeIntegrator};

fn main() {
    let wall = std::env::args().any(|a| a == "--wall");
    landau_obs::set_recording(true);
    landau_obs::reset_spans();

    // A small but representative workload: a few implicit steps so the
    // full span hierarchy (step → newton_iter → residual/factor/solve,
    // jacobian_build → kernel/assembly) appears in the forest.
    let op = perf_operator(60, Backend::Cpu);
    let mut ti = TimeIntegrator::new(op, ThetaMethod::BackwardEuler);
    ti.rtol = 1e-6;
    let mut state = ti.op.initial_state();
    for k in 0..3 {
        ti.try_step(&mut state, 0.2, 0.0, None)
            .unwrap_or_else(|e| panic!("workload step {k} failed: {e}"));
    }

    let snap = landau_obs::spans_snapshot();
    let trace = if wall {
        landau_obs::chrome_trace(&snap)
    } else {
        landau_obs::chrome_trace_deterministic(&snap)
    };
    let root = workspace_root();
    let trace_path = root.join("trace.json");
    let folded_path = root.join("trace.folded");
    std::fs::write(&trace_path, trace.to_text()).expect("write trace.json");
    std::fs::write(&folded_path, landau_obs::folded_stacks(&snap)).expect("write trace.folded");

    let events = trace
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .map_or(0, |a| a.len());
    eprintln!(
        "wrote {} ({events} events{}) and {}",
        trace_path.display(),
        if wall {
            ", wall-clock args"
        } else {
            ", deterministic"
        },
        folded_path.display()
    );
}
