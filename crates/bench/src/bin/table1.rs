//! Table I: cost of the Landau operator for the 10-species plasma vs the
//! number of velocity grids (§III-H).
//!
//! Reports, for 1 / 3 / 10 grids: total integration points N, Landau tensor
//! evaluations (N_total²-style cross-grid count) and solve size n. Paper
//! values: (1,184, 1.4M, 8,050), (960, 0.9M, 1,930), (3,200, 10.2M, 1,930).

use landau_bench::print_table;
use landau_core::species::SpeciesList;
use landau_fem::FemSpace;
use landau_mesh::presets::MeshSpec;

/// Build a 20-cell-class mesh resolving thermal scales `vts` on a domain of
/// `5 v_th` of the fastest species.
fn grid_for(vts: &[f64]) -> FemSpace {
    let vmax = vts.iter().cloned().fold(0.0f64, f64::max);
    // cells_per_vt 0.6 reproduces the paper's 20-cell-class grids.
    let spec = MeshSpec::for_thermal_speeds(5.0 * vmax, 1, vts, 0.6, 3.5);
    FemSpace::new(spec.build(), 3)
}

fn main() {
    let sl = SpeciesList::thermal_quench_10(0.02);
    let vt_e = sl.list[0].thermal_speed();
    let vt_d = sl.list[1].thermal_speed();
    let vt_w = sl.list[2].thermal_speed();

    // 1 grid: everything shares one grid resolving e and W (D is bracketed).
    let shared = grid_for(&[vt_e, vt_d, vt_w]);
    // 3 grids: e | D | 8×W (the W states share one thermal velocity).
    let g_e = grid_for(&[vt_e]);
    let g_d = grid_for(&[vt_d]);
    let g_w = grid_for(&[vt_w]);
    // 10 grids: one per species.
    let per_species: Vec<&FemSpace> =
        vec![&g_e, &g_d, &g_w, &g_w, &g_w, &g_w, &g_w, &g_w, &g_w, &g_w];

    let row = |grids: &[(&FemSpace, usize)]| -> (usize, u64, usize) {
        let n_ip: usize = grids.iter().map(|(g, _)| g.n_ip()).sum();
        let tensors = (n_ip as u64) * (n_ip as u64);
        let n_eq: usize = grids.iter().map(|(g, s)| g.n_dofs * s).sum();
        (n_ip, tensors, n_eq)
    };

    let one = row(&[(&shared, 10)]);
    let three = row(&[(&g_e, 1), (&g_d, 1), (&g_w, 8)]);
    let ten = row(&per_species.iter().map(|g| (*g, 1)).collect::<Vec<_>>());

    let fmt = |v: (usize, u64, usize)| {
        vec![
            format!("{}", v.0),
            format!("{:.2}M", v.1 as f64 / 1e6),
            format!("{}", v.2),
        ]
    };
    println!("single-species 20-cell-class grids: e={} cells, D={} cells, W={} cells; shared grid {} cells",
        g_e.n_elements(), g_d.n_elements(), g_w.n_elements(), shared.n_elements());
    print_table(
        "Table I — cost vs number of grids (paper: 1184/1.4M/8050, 960/0.9M/1930, 3200/10.2M/1930)",
        "# grids",
        &["N ip".into(), "tensors".into(), "n".into()],
        &[
            ("1".into(), fmt(one)),
            ("3".into(), fmt(three)),
            ("10".into(), fmt(ten)),
        ],
    );
}
