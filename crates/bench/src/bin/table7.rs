//! Table VII: component times (Total / Landau / Kernel / factor / solve)
//! for the single-process-per-GPU cases, per machine/back-end, for the
//! 100-step (~2,080 Newton iteration) run.
//!
//! Two kinds of rows:
//!   * DES-simulated device rows (Summit/Spock/Fugaku), as the paper
//!     measured them — driven by the real operation counts;
//!   * a `measured host` row from an actual short solve on this machine,
//!     with the same component breakdown derived from the recorded
//!     `landau-obs` spans (`step` / `jacobian_build` / `kernel` /
//!     `factor` / `solve`) rather than ad-hoc timers.
//!
//! The captured profile (spans + unified metrics) is always written to
//! `profile.json` at the workspace root. `--quick` shortens the host run.

use landau_bench::{measured_profile, perf_operator, print_table, workspace_root};
use landau_core::operator::Backend;
use landau_core::solver::{ThetaMethod, TimeIntegrator};
use landau_hwsim::des::{simulate_cpu_node, simulate_node, PAPER_RUN_ITERS};
use landau_hwsim::MachineConfig;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut op = perf_operator(80, Backend::CudaModel);
    let profile = measured_profile(&mut op);
    let iters = PAPER_RUN_ITERS;
    let configs = [
        ("CUDA", MachineConfig::summit_cuda()),
        ("Kokkos-CUDA", MachineConfig::summit_kokkos()),
        ("Kokkos-HIP", MachineConfig::spock_kokkos_hip()),
    ];
    let mut rows = Vec::new();
    for (name, m) in configs {
        let r = simulate_node(&m, &profile, 1, 1, iters);
        rows.push((
            name.to_string(),
            vec![
                format!("{:.1}", r.t_total),
                format!("{:.1}", r.t_landau),
                format!("{:.1}", r.t_kernel),
                format!("{:.1}", r.t_factor),
                format!("{:.1}", r.t_solve),
            ],
        ));
    }
    // Fugaku normalized: 4 processes × 8 threads, scaled to the 100-step run.
    let mf = MachineConfig::fugaku_kokkos_omp();
    let rf = simulate_cpu_node(&mf, &profile, 4, 8, iters);
    rows.push((
        "Fugaku (norm.)".to_string(),
        vec![
            format!("{:.1}", rf.t_total),
            format!("{:.1}", rf.t_landau),
            format!("{:.1}", rf.t_kernel),
            format!("{:.1}", rf.t_factor),
            format!("{:.1}", rf.t_solve),
        ],
    ));

    // Measured host row: a real short implicit solve with span recording,
    // component times read back from the recorded span forest.
    landau_obs::reset_global();
    let steps = if quick { 1 } else { 2 };
    let mut ti = TimeIntegrator::new(
        perf_operator(80, Backend::CudaModel),
        ThetaMethod::BackwardEuler,
    );
    ti.rtol = 1e-6;
    let mut state = ti.op.initial_state();
    ti.run(&mut state, 0.5, steps, 0.0, |_, _, _, _| {});
    let captured = landau_obs::Profile::capture();
    let c = captured.table7_components();
    rows.push((
        format!("host ({steps}-step)"),
        vec![
            format!("{:.2}", c.total),
            format!("{:.2}", c.landau),
            format!("{:.2}", c.kernel),
            format!("{:.2}", c.factor),
            format!("{:.2}", c.solve),
        ],
    ));

    print_table(
        "Table VII — component times (s) (paper: CUDA 14.3/3.3/2.9/8.4/0.8; \
         K-CUDA 15.4/4.1/3.2/8.7/0.8; K-HIP 23.1/10.9/10.2/5.9/0.5; Fugaku 250.7/215.1/209.5/16.1/1.5)",
        "device",
        &["Total".into(), "Landau".into(), "(Kernel)".into(), "factor".into(), "solve".into()],
        &rows,
    );

    let path = workspace_root().join("profile.json");
    std::fs::write(&path, captured.to_json()).expect("write profile.json");
    println!(
        "wrote {} (schema {}, {} span roots, {} counters)",
        path.display(),
        landau_obs::PROFILE_SCHEMA,
        captured.spans.roots.len(),
        captured.metrics.counters.len(),
    );
}
