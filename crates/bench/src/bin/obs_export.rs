//! Live-telemetry exporter for the `landau-serve` observability plane.
//!
//! Spins up an in-process [`QuenchServer`], drives a small seeded job
//! flood through it, then exports the three telemetry artifacts the
//! paper-repro CI ships:
//!
//! * `OBS_scrape.txt` — the server's [`QuenchServer::metrics_scrape`]
//!   output: the full metric registry plus journal drop counters and
//!   freshly-evaluated `alert.*` families, rendered as OpenMetrics text
//!   and checked by [`landau_obs::openmetrics::validate`],
//! * `JOURNAL_events.json` — the drained event journal in the stable
//!   `landau-obs-events/1` schema (round-trip checked before writing),
//! * `OBS_job_trace.json` — the per-job Chrome trace of one served job:
//!   a single rooted span tree stitched across executor workers and
//!   pool threads (deterministic timestamps).
//!
//! `--smoke` is the CI shape: the same pipeline with hard assertions on
//! every artifact, exiting nonzero on any telemetry regression.

use landau_bench::workspace_root;
use landau_obs::{events_to_json, parse_events, Journal, MetricRegistry};
use landau_quench::QuenchConfig;
use landau_serve::rt::block_on;
use landau_serve::{JobSpec, JobStatus, QuenchServer, ServeConfig};
use std::sync::Arc;

/// The same minimal two-phase quench the load test floods with.
fn small_quench() -> QuenchConfig {
    QuenchConfig {
        domain: 2.0,
        cells_per_vt: 0.3,
        k_outer: 1.0,
        ion_mass: 16.0,
        t_cold: 0.15,
        dt: 0.1,
        max_equil_steps: 1,
        quench_steps: 2,
        pulse_duration: 3.0,
        mass_factor: 3.0,
        ..QuenchConfig::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    landau_obs::set_recording(true);
    landau_obs::reset_spans();
    let journal = Journal::global();
    journal.drain(); // start the export from a clean tail

    let registry = Arc::new(MetricRegistry::new());
    let server = QuenchServer::with_registry(
        ServeConfig {
            workers: 2,
            max_active_slices: 2,
            ..ServeConfig::default()
        },
        registry.clone(),
    );
    let tenants = ["obs-a", "obs-b"];
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let tenant = tenants[i % tenants.len()];
            server
                .submit(
                    tenant,
                    JobSpec::new(format!("{tenant}-j{i}"), small_quench()),
                )
                .expect("smoke flood admitted")
        })
        .collect();
    for h in &handles {
        assert_eq!(block_on(h.wait()), JobStatus::Completed, "smoke job failed");
    }

    let root = workspace_root();

    // 1. OpenMetrics scrape of the live registry + journal + alerts.
    let scrape = server.metrics_scrape();
    landau_obs::openmetrics::validate(&scrape).expect("scrape is valid OpenMetrics");
    if smoke {
        for family in [
            "serve_",
            "alert_",
            "obs_journal_published",
            "obs_journal_dropped",
        ] {
            assert!(scrape.contains(family), "scrape missing {family}");
        }
    }
    let scrape_path = root.join("OBS_scrape.txt");
    std::fs::write(&scrape_path, &scrape).expect("write OBS_scrape.txt");

    // 2. Drained journal tail in the stable events schema.
    let events = journal.drain();
    let doc = events_to_json(&events, journal.dropped());
    let text = doc.to_text();
    let (parsed, _) = parse_events(&text).expect("journal export round-trips");
    assert_eq!(parsed.len(), events.len(), "journal round-trip lost events");
    if smoke {
        assert!(
            !events.is_empty(),
            "smoke flood published no journal events"
        );
    }
    let journal_path = root.join("JOURNAL_events.json");
    std::fs::write(&journal_path, &text).expect("write JOURNAL_events.json");

    // 3. Per-job Chrome trace: one rooted span tree per served job.
    let jobs = landau_obs::traced_jobs();
    if smoke {
        assert!(!jobs.is_empty(), "no job accumulated any spans");
    }
    let trace_path = root.join("OBS_job_trace.json");
    if let Some(&job) = jobs.first() {
        let snap = landau_obs::job_spans_snapshot(job);
        let trace = landau_obs::job_chrome_trace(job, &snap);
        std::fs::write(&trace_path, trace.to_text()).expect("write OBS_job_trace.json");
    }

    eprintln!(
        "wrote {} ({} lines), {} ({} events), {} ({} traced jobs){}",
        scrape_path.display(),
        scrape.lines().count(),
        journal_path.display(),
        events.len(),
        trace_path.display(),
        jobs.len(),
        if smoke {
            " [smoke assertions passed]"
        } else {
            ""
        }
    );
}
