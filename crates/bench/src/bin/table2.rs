//! Table II: CUDA back-end throughput on one Summit node (V100), Newton
//! iterations/second vs cores/GPU × processes/core.

use landau_bench::{measured_profile, perf_operator, print_table};
use landau_core::operator::Backend;
use landau_hwsim::{simulate_node, MachineConfig};

fn main() {
    let mut op = perf_operator(80, Backend::CudaModel);
    let profile = measured_profile(&mut op);
    let m = MachineConfig::summit_cuda();
    let cores = [1usize, 2, 3, 5, 7];
    let ppc = [1usize, 2, 3];
    let rows: Vec<(String, Vec<String>)> = ppc
        .iter()
        .map(|&p| {
            let vals = cores
                .iter()
                .map(|&c| {
                    let r = simulate_node(&m, &profile, c, p, 60);
                    format!("{:.0}", r.newton_per_sec)
                })
                .collect();
            (format!("{p} proc/core"), vals)
        })
        .collect();
    print_table(
        "Table II — CUDA, V100 Newton iterations/sec (paper row 1: 849..5504; row 3: 1096..7005)",
        "cores/GPU →",
        &cores.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        &rows,
    );
}
