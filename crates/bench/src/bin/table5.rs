//! Table V: Kokkos-HIP throughput on one Spock node (4× MI100), including
//! the rollover at 16 processes/GPU (§V-D1).

use landau_bench::{measured_profile, perf_operator, print_table};
use landau_core::operator::Backend;
use landau_hwsim::{simulate_node, MachineConfig};

fn main() {
    let mut op = perf_operator(80, Backend::KokkosModel);
    let profile = measured_profile(&mut op);
    let m = MachineConfig::spock_kokkos_hip();
    let cores = [1usize, 2, 4, 8];
    let ppc = [1usize, 2];
    let rows: Vec<(String, Vec<String>)> = ppc
        .iter()
        .map(|&p| {
            let vals = cores
                .iter()
                .map(|&c| {
                    let r = simulate_node(&m, &profile, c, p, 60);
                    format!("{:.0}", r.newton_per_sec)
                })
                .collect();
            (format!("{p} proc/core"), vals)
        })
        .collect();
    print_table(
        "Table V — Kokkos-HIP, MI100 iterations/sec (paper: 88..353 @1ppc; 154..241 @2ppc, rollover)",
        "cores/GPU →",
        &cores.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        &rows,
    );
}
