//! Deterministic load test for the `landau-serve` job service.
//!
//! Drives a seeded flood of concurrent small quenches from several
//! tenants through [`QuenchServer`], honouring backpressure (rejected
//! submissions retry after the server's `retry_after_ms` hint), then
//! reports:
//!
//! * p50/p99 submit-to-first-record and end-to-end latency, read from
//!   the server's own `serve.*` histograms via the batch
//!   [`HistogramSnapshot::quantiles`] API,
//! * throughput (completed jobs per second of wall time),
//! * fairness spread across tenants (relative grant-count imbalance),
//! * a kill–resume probe: one job is cancelled mid-flight and resumed,
//!   and its exported timeseries must be byte-identical to an
//!   uninterrupted run of the same scenario. The probe also drains the
//!   global event journal in two batches and checks that the merged
//!   stream is seq-ordered and survives a `landau-obs-events/1`
//!   round-trip,
//! * a live scrape probe: `metrics_scrape()` is called while the flood
//!   is still in flight and must return valid OpenMetrics text carrying
//!   `serve_*`, `alert_*`, and journal drop-counter families.
//!
//! Results land in `BENCH_serve.json` (gated by `bench_gate`) and the
//! raw `serve.*` latency histograms in `SERVE_latency_hist.json` (CI
//! artifact). `--quick` is the CI shape: 200 jobs across 4 tenants.

use landau_bench::{print_table, workspace_root, write_bench_json};
use landau_obs::{events_to_json, merge_drained, parse_events, EventKind, Journal, MetricRegistry};
use landau_quench::QuenchConfig;
use landau_serve::rt::block_on;
use landau_serve::{JobHandle, JobSpec, JobStatus, QuenchServer, ServeConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Splitmix64: the workspace-standard deterministic generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The smallest two-phase quench that still runs real physics: one
/// equilibration step plus one quench step on a coarse mesh (~300 ms of
/// solver work on one core).
fn small_quench(rng: &mut u64, quench_steps: usize) -> QuenchConfig {
    // Seeded scenario jitter so the flood is not one memoizable problem.
    let t_cold = [0.12, 0.15, 0.18][(splitmix64(rng) % 3) as usize];
    let mass_factor = [2.5, 3.0, 3.5][(splitmix64(rng) % 3) as usize];
    QuenchConfig {
        domain: 2.0,
        cells_per_vt: 0.3,
        k_outer: 1.0,
        ion_mass: 16.0,
        t_cold,
        dt: 0.1,
        max_equil_steps: 1,
        quench_steps,
        pulse_duration: 3.0,
        mass_factor,
        ..QuenchConfig::default()
    }
}

/// Kill–resume probe: run a scenario to completion, then the same
/// scenario cancelled after its first record and resumed; the two
/// timeseries exports must be byte-identical. Doubles as the journal
/// semantics probe: the events emitted around the kill/resume are
/// drained in two batches whose merge must be seq-ordered and must
/// survive a `landau-obs-events/1` encode/parse round-trip.
fn resume_probe(server: &QuenchServer) -> bool {
    let journal = Journal::global();
    journal.drain(); // discard any events from earlier in the process
    let mut rng = 7u64;
    let cfg = small_quench(&mut rng, 4);
    let reference = {
        let h = server
            .submit("probe", JobSpec::new("probe-ref", cfg.clone()))
            .expect("probe admitted");
        if block_on(h.wait()) != JobStatus::Completed {
            return false;
        }
        h.series_json()
    };
    let h = server
        .submit("probe", JobSpec::new("probe-kill", cfg))
        .expect("probe admitted");
    let mut stream = h.stream();
    if block_on(stream.next()).is_none() {
        return false;
    }
    h.cancel();
    if block_on(h.wait()) != JobStatus::Cancelled {
        return false;
    }
    // First drain batch: everything up to and including the cancel.
    let batch_a = journal.drain();
    let h2 = match server.resume(h.id) {
        Ok(h2) => h2,
        Err(_) => return false,
    };
    if block_on(h2.wait()) != JobStatus::Completed || h2.series_json() != reference {
        return false;
    }
    let batch_b = journal.drain();
    journal_probe(batch_a, batch_b, journal.dropped(), h.id.0)
}

/// Check the journal semantics exercised by the kill–resume probe:
/// batch-independent merge ordering, lifecycle coverage for the killed
/// job, and a lossless `landau-obs-events/1` round-trip.
fn journal_probe(
    batch_a: Vec<landau_obs::Event>,
    batch_b: Vec<landau_obs::Event>,
    dropped: u64,
    killed_job: u64,
) -> bool {
    let merged = merge_drained(vec![batch_a, batch_b]);
    if merged.windows(2).any(|w| w[0].seq >= w[1].seq) {
        eprintln!("journal probe: merged drain is not strictly seq-ordered");
        return false;
    }
    let kinds_for_killed: Vec<EventKind> = merged
        .iter()
        .filter(|e| e.job == killed_job)
        .map(|e| e.kind)
        .collect();
    for want in [
        EventKind::JobSubmitted,
        EventKind::JobCancelled,
        EventKind::JobResumed,
        EventKind::JobCompleted,
    ] {
        if !kinds_for_killed.contains(&want) {
            eprintln!("journal probe: killed job missing {want:?} event");
            return false;
        }
    }
    let text = events_to_json(&merged, dropped).to_text();
    match parse_events(&text) {
        Ok((parsed, parsed_dropped)) => {
            let seqs_match = parsed.len() == merged.len()
                && parsed
                    .iter()
                    .zip(&merged)
                    .all(|(p, m)| p.seq == m.seq && p.kind == m.kind && p.job == m.job);
            if !seqs_match || parsed_dropped != dropped {
                eprintln!("journal probe: round-trip mismatch");
                return false;
            }
            true
        }
        Err(e) => {
            eprintln!("journal probe: round-trip parse failed: {e}");
            false
        }
    }
}

struct Args {
    jobs: usize,
    tenants: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        jobs: 1000,
        tenants: 8,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                args.jobs = 200;
                args.tenants = 4;
            }
            "--jobs" => args.jobs = it.next().and_then(|v| v.parse().ok()).expect("--jobs N"),
            "--tenants" => {
                args.tenants = it.next().and_then(|v| v.parse().ok()).expect("--tenants K")
            }
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            other => panic!("unknown argument {other}"),
        }
    }
    args.tenants = args.tenants.max(1);
    args
}

fn main() {
    let args = parse_args();
    let registry = Arc::new(MetricRegistry::new());
    let server = QuenchServer::with_registry(
        ServeConfig {
            workers: 2,
            max_active_slices: 2,
            // Bounded queues sized well below the flood so the reject /
            // retry-after path is genuinely exercised.
            max_in_flight_per_tenant: 8,
            max_in_flight_total: 24,
            min_retry_after_ms: 10,
            ..ServeConfig::default()
        },
        registry.clone(),
    );
    let tenants: Vec<String> = (0..args.tenants).map(|i| format!("tenant-{i}")).collect();
    for t in &tenants {
        server.set_tenant_quota(t, 1);
    }

    let resume_ok = resume_probe(&server);

    let mut rng = args.seed;
    let mut handles: Vec<JobHandle> = Vec::with_capacity(args.jobs);
    let mut retries = 0u64;
    let t0 = Instant::now();
    for i in 0..args.jobs {
        let tenant = &tenants[i % tenants.len()];
        let spec = JobSpec {
            slice_steps: 1,
            ..JobSpec::new(format!("{tenant}-j{i}"), small_quench(&mut rng, 1))
        };
        // Honour backpressure: bounced submissions wait the hinted
        // interval and retry — the client half of the reject contract.
        let handle = loop {
            match server.submit(tenant, spec.clone()) {
                Ok(h) => break h,
                Err(rej) => {
                    retries += 1;
                    std::thread::sleep(Duration::from_millis(rej.retry_after_ms.min(250)));
                }
            }
        };
        handles.push(handle);
        // Seeded sub-millisecond arrival jitter.
        std::thread::sleep(Duration::from_micros(splitmix64(&mut rng) % 800));
    }
    // Live scrape probe: while the flood is still in flight, a scrape
    // must come back as valid OpenMetrics carrying the serve, alert,
    // and journal families.
    let scrape = server.metrics_scrape();
    landau_obs::openmetrics::validate(&scrape).expect("mid-load scrape is valid OpenMetrics");
    for family in [
        "serve_",
        "alert_",
        "obs_journal_published",
        "obs_journal_dropped",
    ] {
        assert!(
            scrape.contains(family),
            "mid-load scrape is missing the {family} family"
        );
    }
    let mut completed = 0usize;
    for h in &handles {
        if block_on(h.wait()) == JobStatus::Completed {
            completed += 1;
        }
    }
    let wall = t0.elapsed().as_secs_f64();

    // Fairness spread: relative imbalance of slice grants across tenants
    // (0 = perfectly even). The probe tenant is excluded.
    let grants = server.grant_log();
    let per_tenant: Vec<f64> = tenants
        .iter()
        .map(|t| grants.iter().filter(|(g, _)| g == t).count() as f64)
        .collect();
    let gmax = per_tenant.iter().cloned().fold(f64::MIN, f64::max);
    let gmin = per_tenant.iter().cloned().fold(f64::MAX, f64::min);
    let spread = if gmax > 0.0 {
        (gmax - gmin) / gmax
    } else {
        1.0
    };

    let snap = registry.snapshot();
    let rejected = snap.counter("serve.rejected_jobs") as f64;
    let throughput = completed as f64 / wall.max(1e-9);

    // Latency quantiles come from the server's own histograms now, via
    // the single-pass batch API (one bucket walk per histogram).
    let hist_quantiles = |name: &str| -> Vec<f64> {
        snap.histograms
            .get(name)
            .map(|h| h.quantiles(&[0.50, 0.99]))
            .unwrap_or_else(|| vec![0.0, 0.0])
    };
    let first_q = hist_quantiles("serve.submit_to_first_record_ms");
    let e2e_q = hist_quantiles("serve.job_e2e_ms");

    let entries = vec![
        ("serve.jobs_total".to_string(), args.jobs as f64),
        ("serve.jobs_completed".to_string(), completed as f64),
        ("serve.tenants".to_string(), args.tenants as f64),
        ("serve.p50_submit_to_first_ms".to_string(), first_q[0]),
        ("serve.p99_submit_to_first_ms".to_string(), first_q[1]),
        ("serve.p50_e2e_ms".to_string(), e2e_q[0]),
        ("serve.p99_e2e_ms".to_string(), e2e_q[1]),
        ("serve.throughput_jobs_per_sec".to_string(), throughput),
        ("serve.fairness_spread".to_string(), spread),
        ("serve.rejected_jobs".to_string(), rejected),
        (
            "serve.resume_bitwise_identical".to_string(),
            if resume_ok { 1.0 } else { 0.0 },
        ),
    ];
    let path = write_bench_json("BENCH_serve.json", &entries);
    println!("wrote {}", path.display());

    // Raw serve.* histograms (log2 buckets) as a CI artifact.
    let mut hist = String::from("{\n");
    let serve_hists: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("serve."))
        .collect();
    for (i, (name, h)) in serve_hists.iter().enumerate() {
        let comma = if i + 1 == serve_hists.len() { "" } else { "," };
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .map(|(b, n)| format!("\"{b}\": {n}"))
            .collect();
        let q = h.quantiles(&[0.5, 0.99]);
        hist.push_str(&format!(
            "  \"{name}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p99\": {}, \"buckets\": {{{}}}}}{comma}\n",
            h.count,
            h.min,
            h.max,
            q[0],
            q[1],
            buckets.join(", ")
        ));
    }
    hist.push_str("}\n");
    let hist_path = workspace_root().join("SERVE_latency_hist.json");
    std::fs::write(&hist_path, hist).expect("write latency histogram");
    println!("wrote {}", hist_path.display());

    print_table(
        "landau-serve load test",
        "metric",
        &["value".to_string()],
        &entries
            .iter()
            .map(|(k, v)| (k.clone(), vec![format!("{v:.2}")]))
            .collect::<Vec<_>>(),
    );
    println!(
        "\n{} jobs, {} tenants, seed {}: {completed} completed in {wall:.1}s ({retries} submit retries, {} steals)",
        args.jobs,
        args.tenants,
        args.seed,
        server.steal_count()
    );
    assert_eq!(completed, args.jobs, "not every job completed");
    assert!(resume_ok, "kill-resume probe was not bitwise identical");
}
