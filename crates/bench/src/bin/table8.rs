//! Table VIII: summary — best throughput per machine/language and the
//! Landau-kernel performance normalized to Summit/CUDA.

use landau_bench::{measured_profile, perf_operator, print_table};
use landau_core::operator::Backend;
use landau_hwsim::des::{simulate_cpu_node, simulate_node};
use landau_hwsim::MachineConfig;

fn main() {
    let mut op = perf_operator(80, Backend::CudaModel);
    let profile = measured_profile(&mut op);
    let iters = 60u64;
    let cuda = simulate_node(&MachineConfig::summit_cuda(), &profile, 7, 3, iters);
    let kk = simulate_node(&MachineConfig::summit_kokkos(), &profile, 7, 3, iters);
    let hip = simulate_node(&MachineConfig::spock_kokkos_hip(), &profile, 8, 1, iters);
    let omp = simulate_cpu_node(&MachineConfig::fugaku_kokkos_omp(), &profile, 4, 8, iters);
    // Kernel % of CUDA: standalone kernel rate normalized by device peak
    // (the paper's Fugaku entry instead normalizes node throughput via
    // Top500 — see EXPERIMENTS.md).
    use landau_hwsim::des::standalone_kernel_time;
    let mc = MachineConfig::summit_cuda();
    let tc = standalone_kernel_time(&mc, &profile, 1);
    let pct = |m: &MachineConfig, threads: usize| {
        let t = standalone_kernel_time(m, &profile, threads);
        let dev = if m.gpus > 0 { &m.gpu } else { &m.cpu };
        100.0 * (tc / t) / (dev.peak_fp64_gflops / mc.gpu.peak_fp64_gflops)
    };
    let rows = vec![
        (
            "Summit/CUDA".to_string(),
            vec![
                format!("{:.0}", cuda.newton_per_sec),
                "6 V100+42 P9".into(),
                "100".into(),
            ],
        ),
        (
            "Summit/Kokkos".to_string(),
            vec![
                format!("{:.0}", kk.newton_per_sec),
                "6 V100+42 P9".into(),
                format!("{:.0}", pct(&MachineConfig::summit_kokkos(), 1)),
            ],
        ),
        (
            "Spock/K-HIP".to_string(),
            vec![
                format!("{:.0}", hip.newton_per_sec),
                "4 MI100+32 EPYC".into(),
                format!("{:.0}", pct(&MachineConfig::spock_kokkos_hip(), 1)),
            ],
        ),
        (
            "Fugaku/K-OMP".to_string(),
            vec![
                format!("{:.0}", omp.newton_per_sec),
                "32 A64FX".into(),
                format!("{:.0}", pct(&MachineConfig::fugaku_kokkos_omp(), 32)),
            ],
        ),
    ];
    print_table(
        "Table VIII — summary (paper: 7005/100, 6193/90, 353/20, 39/12)",
        "machine/language",
        &["N/sec".into(), "hardware".into(), "kernel %CUDA".into()],
        &rows,
    );
}
