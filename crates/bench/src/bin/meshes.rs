//! Figures 1 & 3: adapted meshes for Maxwellian distributions — SVG dumps
//! plus statistics.

use landau_core::species::{Species, SpeciesList};
use landau_fem::{weighted_functional, FemSpace};
use landau_mesh::presets::{maxwellian_mesh, MeshSpec, RefineShell};
use landau_mesh::svg::forest_to_svg;

fn main() {
    let out = std::path::Path::new("target/meshes");
    std::fs::create_dir_all(out).unwrap();
    // Figure 3: single-species ~20-cell mesh, 5 v_th domain (paper: 20
    // cells, resolving the Maxwellian's total energy to ~5 digits, vs 128
    // cells for the equivalent Cartesian grid — 6.4x).
    let e = Species::electron();
    let vt = e.thermal_speed();
    let f3 = MeshSpec {
        domain_radius: 5.0 * vt,
        base_level: 1,
        shells: vec![
            RefineShell {
                radius: 2.6 * vt,
                max_cell_size: 1.3 * vt,
            },
            RefineShell {
                radius: 1.3 * vt,
                max_cell_size: 0.65 * vt,
            },
        ],
        tail_box: None,
    }
    .build();
    println!(
        "Fig 3 mesh (electron Maxwellian): {} cells (paper: 20), levels {:?}, equivalent uniform {} cells (paper: 128, 6.4x)",
        f3.num_cells(),
        f3.level_histogram(),
        f3.equivalent_uniform_cells()
    );
    // Energy-resolution claim: the interpolated Maxwellian's energy moment.
    let s3 = FemSpace::new(f3.clone(), 3);
    let coeffs = s3.interpolate(|r, z| e.maxwellian(r, z, 0.0));
    let m2 = weighted_functional(&s3, |r, z| r * r + z * z);
    let two_pi = 2.0 * std::f64::consts::PI;
    let energy: f64 = m2.iter().zip(&coeffs).map(|(a, b)| a * b).sum::<f64>() * two_pi;
    let exact = 1.5 * e.theta();
    println!(
        "  energy of interpolant: {:.6e} vs exact {:.6e} — rel err {:.1e}",
        energy,
        exact,
        ((energy - exact) / exact).abs()
    );
    // The paper's five-digit claim is about *quadrature* of the Maxwellian
    // (128 integration points within ~1 thermal radius).
    let mut equad = 0.0;
    let mut nip_inner = 0usize;
    for el in &s3.elements {
        for q in 0..s3.tab.nq {
            let (xi, eta) = s3.tab.quad.points[q];
            let (r, z) = el.map_point(xi, eta);
            let w = s3.tab.quad.weights[q] * el.det_j() * r;
            equad += two_pi * w * (r * r + z * z) * e.maxwellian(r, z, 0.0);
            if (r * r + z * z).sqrt() < 1.3 * vt {
                nip_inner += 1;
            }
        }
    }
    println!(
        "  energy by quadrature: rel err {:.1e} with {} ip inside 1.3 v_th (paper: ~5 digits, 128 ip)",
        ((equad - exact) / exact).abs(),
        nip_inner
    );
    std::fs::write(out.join("fig3_electron.svg"), forest_to_svg(&f3, None, 500)).unwrap();

    // Figure 1: electron–deuterium mesh.
    let sl = SpeciesList::electron_deuterium();
    let vts = sl.thermal_speeds();
    let f1 = maxwellian_mesh(5.0 * vts[0], &vts, 1.0);
    println!(
        "Fig 1 mesh (e-D Maxwellians): {} cells, max level {}, {} dofs-class",
        f1.num_cells(),
        f1.max_level(),
        f1.num_cells() * 9
    );
    std::fs::write(
        out.join("fig1_e_deuterium.svg"),
        forest_to_svg(&f1, None, 500),
    )
    .unwrap();
    println!("SVGs written to target/meshes/");
}
