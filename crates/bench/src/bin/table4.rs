//! Table IV: roofline data for the Jacobian and mass kernels (§V-A1).
//!
//! Runs the real kernels (CUDA model) on the utilization problem, then
//! reads the operation totals back from the *unified metric registry* —
//! the virtual device publishes every launch as `kernel.<name>.*`
//! counters, and `landau_hwsim::obs_bridge` reconstitutes them for the
//! roofline model. Paper: Jacobian AI 15.8, 53%, FP64 pipe (66.4%); mass
//! AI 1.8, 17%, L1 (27%).

use landau_bench::{perf_operator, print_table};
use landau_core::operator::Backend;
use landau_hwsim::obs_bridge::kernel_stats_from_metrics;
use landau_hwsim::roofline::{roofline_report, KernelModel};
use landau_obs::MetricRegistry;
use landau_vgpu::DeviceSpec;

fn main() {
    // The paper uses a 320-cell version for utilization so the device is
    // fully occupied; scale down with --quick.
    let quick = std::env::args().any(|a| a == "--quick");
    landau_obs::reset_global();
    let mut op = perf_operator(if quick { 80 } else { 320 }, Backend::CudaModel);
    println!(
        "utilization problem: {} Q3 elements, {} species, {} ip",
        op.space.n_elements(),
        op.species.len(),
        op.space.n_ip()
    );
    let state = op.initial_state();
    let _ = op.assemble(&state, 0.0);
    let _ = op.assemble_shifted_mass(1.0);
    let snap = MetricRegistry::global().snapshot();
    let jac = kernel_stats_from_metrics(&snap, "landau_jacobian")
        .expect("Jacobian launch must be recorded in the metric registry");
    let mass = kernel_stats_from_metrics(&snap, "mass")
        .expect("mass launch must be recorded in the metric registry");
    // The registry view must agree with the per-device counters exactly —
    // one launch each, published push-style from `record_launch`.
    assert_eq!(jac.flops, op.device.kernel_stats("landau_jacobian").flops);
    assert_eq!(mass.flops, op.device.kernel_stats("mass").flops);
    let dev = DeviceSpec::v100();
    let rj = roofline_report(&jac, &KernelModel::jacobian(), &dev);
    let rm = roofline_report(&mass, &KernelModel::mass(), &dev);
    let row = |r: &landau_hwsim::RooflineReport| {
        vec![
            format!("{:.1}", r.ai),
            format!("{:.0}%", 100.0 * r.roofline_fraction),
            if r.compute_bound {
                format!("FP64 pipe ({:.1}%)", 100.0 * r.bottleneck_utilization)
            } else {
                format!("memory ({:.0}%)", 100.0 * r.bottleneck_utilization)
            },
            format!("{:.2} TF/s", r.achieved_flops / 1e12),
        ]
    };
    print_table(
        "Table IV — roofline (paper: Jacobian 15.8 / 53% / FP64 pipe 66.4%; mass 1.8 / 17% / L1 27%)",
        "kernel",
        &["AI".into(), "% roofline".into(), "bottleneck".into(), "achieved".into()],
        &[
            ("Jacobian".into(), row(&rj)),
            ("Mass".into(), row(&rm)),
        ],
    );
    println!(
        "counters: jacobian {} GF / {} MB dram; mass {} MF / {} MB dram; shuffles {}; atomics {}",
        jac.flops / 1_000_000_000,
        (jac.dram_read + jac.dram_write) / 1_000_000,
        mass.flops / 1_000_000,
        (mass.dram_read + mass.dram_write) / 1_000_000,
        jac.shuffles,
        jac.atomics + mass.atomics,
    );
}
