//! `ex2` — the thermal-quench application as a command-line tool, mirroring
//! the PETSc tutorial the paper ships (`ex2.c` in the Landau tutorials).
//!
//! Usage (all flags optional):
//!   ex2 [-z <Z>] [-ion_mass <m/me>] [-dt <dt>] [-e0_over_ec <f>]
//!       [-mass_factor <f>] [-t_cold <T>] [-steps <n>] [-equil_steps <n>]
//!       [-cells_per_vt <c>] [-domain <R>] [-backend cpu|cuda|kokkos]
//!       [-spitzer_only] [-csv]

use landau_core::operator::Backend;
use landau_quench::{measure_resistivity, QuenchConfig, QuenchDriver, ResistivityConfig};

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    parse_flag(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let backend = match parse_flag(&args, "-backend").as_deref() {
        Some("cuda") => Backend::CudaModel,
        Some("kokkos") => Backend::KokkosModel,
        _ => Backend::Cpu,
    };
    let z = parse(&args, "-z", 1.0f64);
    let ion_mass = parse(&args, "-ion_mass", 16.0f64);
    let dt = parse(&args, "-dt", 0.25f64);
    let cells_per_vt = parse(&args, "-cells_per_vt", 0.75f64);
    let domain = parse(&args, "-domain", 4.5f64);

    if args.iter().any(|a| a == "-spitzer_only") {
        let cfg = ResistivityConfig {
            z,
            ion_mass,
            dt: parse(&args, "-dt", 0.5f64),
            cells_per_vt,
            k_outer: parse(&args, "-k_outer", 2.2f64),
            domain,
            max_steps: parse(&args, "-steps", 40usize),
            backend,
            ..Default::default()
        };
        let run = measure_resistivity(&cfg);
        println!(
            "Z={z}: eta = {:.5} vs Spitzer {:.5} ({:+.2}%), {} steps, converged={}",
            run.eta_measured,
            run.eta_spitzer,
            100.0 * run.relative_error(),
            run.steps,
            run.converged
        );
        return;
    }

    let cfg = QuenchConfig {
        z,
        ion_mass,
        dt,
        cells_per_vt,
        k_outer: parse(&args, "-k_outer", 2.2f64),
        domain,
        e0_over_ec: parse(&args, "-e0_over_ec", 0.5f64),
        mass_factor: parse(&args, "-mass_factor", 3.0f64),
        t_cold: parse(&args, "-t_cold", 0.15f64),
        pulse_duration: parse(&args, "-pulse", 3.0f64),
        max_equil_steps: parse(&args, "-equil_steps", 16usize),
        quench_steps: parse(&args, "-steps", 24usize),
        backend,
        ..Default::default()
    };
    let mut d = QuenchDriver::new(cfg);
    eprintln!(
        "ex2: {} Q3 cells, {} dofs/species, backend {:?}",
        d.ti().op.space.n_elements(),
        d.ti().op.n(),
        backend
    );
    if let Err(e) = d.run() {
        eprintln!("quench run failed: {e}");
        eprintln!("(samples up to the failure follow)");
    }
    if args.iter().any(|a| a == "-csv") {
        println!("t,n_e,J,E,T_e,phase");
        for s in &d.samples {
            println!(
                "{:.3},{:.5},{:.5e},{:.5e},{:.4},{}",
                s.t,
                s.n_e,
                s.j,
                s.e,
                s.t_e,
                if s.quenching { "quench" } else { "equil" }
            );
        }
    } else {
        for s in &d.samples {
            println!(
                "t={:6.2} [{}] n_e={:.3} J={:.3e} E={:.3e} T_e={:.4}",
                s.t,
                if s.quenching { "Q" } else { "E" },
                s.n_e,
                s.j,
                s.e,
                s.t_e
            );
        }
    }
    eprintln!("total Newton iterations: {}", d.stats.newton_iters);
}
