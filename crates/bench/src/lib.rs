//! Shared helpers for the table/figure harness binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin` (`table1` … `table8`, `fig4`, `fig5`, `meshes`) that prints the
//! same rows/series the paper reports, regenerated from this
//! implementation. See `EXPERIMENTS.md` for the paper-vs-measured record.

use landau_core::operator::{AssemblyPath, Backend, LandauOperator};
use landau_core::solver::{ThetaMethod, TimeIntegrator};
use landau_core::species::SpeciesList;
use landau_fem::FemSpace;
use landau_hwsim::IterationProfile;
use landau_mesh::presets::{MeshSpec, RefineShell};

/// Build the §V performance test problem: 10 species (e, D, 8×W) on a
/// mesh of roughly `ne_target` Q3 elements (the paper uses 80; Table IV's
/// utilization study uses 320).
pub fn perf_operator(ne_target: usize, backend: Backend) -> LandauOperator {
    let sl = SpeciesList::thermal_quench_10(0.02);
    // A modest adapted mesh; the paper's perf meshes likewise do not
    // resolve the heavy-species scales.
    let mut spec = MeshSpec {
        domain_radius: 5.0,
        base_level: 2,
        shells: vec![RefineShell {
            radius: 2.8,
            max_cell_size: 0.65,
        }],
        tail_box: None,
    };
    if ne_target > 150 {
        spec.shells.push(RefineShell {
            radius: 1.6,
            max_cell_size: 0.33,
        });
    }
    if ne_target > 400 {
        spec.base_level = 3;
    }
    let space = FemSpace::new(spec.build(), 3);
    let mut op = LandauOperator::new(space, sl, backend);
    op.assembly = AssemblyPath::Atomic; // the GPU assembly path
    op
}

/// Measure the real per-Newton-iteration operation profile by assembling
/// the Jacobian and mass kernels once on the virtual device and reading
/// back the counters; factor/solve FLOPs come from the band solver's cost
/// model at the problem's RCM bandwidth.
pub fn measured_profile(op: &mut LandauOperator) -> IterationProfile {
    op.device.reset_counters();
    let state = op.initial_state();
    let _ = op.assemble(&state, 0.0);
    let _ = op.assemble_shifted_mass(1.0);
    let jac = op.device.kernel_stats("landau_jacobian");
    let mass = op.device.kernel_stats("mass");
    let s = op.species.len();
    let n = op.n();
    let _ = &jac;
    // Bandwidth of the reordered block (best of RCM and geometric sweep,
    // matching what the integrator uses).
    let perm = landau_sparse::rcm::rcm_order(&op.mass);
    let bw_rcm = landau_sparse::rcm::bandwidth(&op.mass.permute_symmetric(&perm));
    let mut gperm: Vec<usize> = (0..n).collect();
    gperm.sort_by(|&a, &b| {
        let (ra, za) = op.space.dof_positions[a];
        let (rb, zb) = op.space.dof_positions[b];
        (za, ra).partial_cmp(&(zb, rb)).unwrap()
    });
    let bw_geo = landau_sparse::rcm::bandwidth(&op.mass.permute_symmetric(&gperm));
    let bw = bw_rcm.min(bw_geo);
    IterationProfile {
        kernel_flops: jac.flops,
        kernel_bytes: jac.dram_read + jac.dram_write,
        mass_flops: mass.flops,
        mass_bytes: mass.dram_read + mass.dram_write,
        atomics: jac.atomics + mass.atomics,
        factor_flops: (s * 2 * n * bw * (bw + 1)) as u64,
        solve_flops: (s * 12 * n * bw) as u64,
        host_flops: (s * n * 2000) as u64,
    }
}

/// A short real solver run measuring Newton iterations per time step (the
/// multiplier between time steps and the throughput tables' iterations).
pub fn measure_newton_per_step(op: LandauOperator, steps: usize, dt: f64) -> f64 {
    let mut ti = TimeIntegrator::new(op, ThetaMethod::BackwardEuler);
    ti.rtol = 1e-8;
    let mut state = ti.op.initial_state();
    let mut iters = 0usize;
    for _ in 0..steps {
        let s = ti.step(&mut state, dt, 0.0, None);
        iters += s.newton_iters;
    }
    iters as f64 / steps as f64
}

/// The workspace root (bench mains may run with the package directory as
/// cwd, so outputs anchor here instead of relative paths).
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root")
        .to_path_buf()
}

/// Write a flat `{"metric": value}` JSON map to `file_name` at the
/// workspace root (bench mains run with the package directory as cwd).
/// Returns the path written so mains can echo it for CI logs.
pub fn write_bench_json(file_name: &str, entries: &[(String, f64)]) -> std::path::PathBuf {
    let path = workspace_root().join(file_name);
    let mut s = String::from("{\n");
    for (i, (name, value)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("  \"{name}\": {value:e}{comma}\n"));
    }
    s.push_str("}\n");
    std::fs::write(&path, s).expect("write bench json");
    path
}

/// Render an aligned text table.
pub fn print_table(title: &str, col_label: &str, cols: &[String], rows: &[(String, Vec<String>)]) {
    println!("\n=== {title} ===");
    print!("{col_label:>20}");
    for c in cols {
        print!("{c:>16}");
    }
    println!();
    for (name, vals) in rows {
        print!("{name:>20}");
        for v in vals {
            print!("{v:>16}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_problem_matches_paper_scale() {
        let op = perf_operator(80, Backend::Cpu);
        assert_eq!(op.species.len(), 10);
        let ne = op.space.n_elements();
        assert!((50..140).contains(&ne), "expected ~80 elements, got {ne}");
        assert_eq!(op.space.tab.nq, 16);
    }

    #[test]
    fn measured_profile_is_sane() {
        let mut op = perf_operator(80, Backend::CudaModel);
        let p = measured_profile(&mut op);
        assert!(p.kernel_flops > p.mass_flops);
        assert!(p.atomics > 0);
        let ai = p.kernel_flops as f64 / p.kernel_bytes as f64;
        assert!(ai > 2.0, "Jacobian AI suspiciously low: {ai}");
    }
}
