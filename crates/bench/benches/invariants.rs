//! Invariant-drift benchmark: the quick thermal quench (§IV-C) with a
//! Record-mode [`ConservationMonitor`] installed, emitting the measured
//! per-run drift maxima for the bench_gate's ceilings.
//!
//! The gate is the physics acceptance criterion of the telemetry layer:
//! per-species mass and total momentum/energy *accounted* drift stay at
//! roundoff (< 1e-10 relative) through equilibration, the cold pulse and
//! the Spitzer feedback, and the collisional entropy production (source
//! flux accounted) never goes negative beyond eps.
//!
//! Plain timing harness (`harness = false`):
//! `cargo bench -p landau-bench --bench invariants -- --quick`.
//! Results land in `BENCH_invariants.json` at the workspace root.

use landau_bench::write_bench_json;
use landau_core::operator::Backend;
use landau_core::Watchdog;
use landau_obs::timeseries::SeriesSink;
use landau_obs::MetricRegistry;
use landau_quench::{QuenchConfig, QuenchDriver};
use std::sync::Arc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = QuenchConfig {
        ion_mass: 16.0,
        cells_per_vt: 0.75,
        k_outer: 2.2,
        domain: 4.5,
        t_cold: 0.15,
        mass_factor: 3.0,
        pulse_duration: 3.0,
        max_equil_steps: 16,
        quench_steps: if quick { 20 } else { 40 },
        backend: Backend::Cpu,
        ..Default::default()
    };
    let mut d = QuenchDriver::new(cfg);
    // Private registry/sink: the numbers below must come from this run
    // alone, not whatever else the process recorded.
    d.metrics = Arc::new(MetricRegistry::new());
    d.series = Arc::new(SeriesSink::new());
    d.enable_monitoring(Watchdog::recording());
    d.run().expect("monitored quick quench failed");

    let snap = d.metrics.snapshot();
    let gauge = |name: &str| {
        snap.gauge(name)
            .unwrap_or_else(|| panic!("monitor never published {name}"))
    };
    let ts = d.series.snapshot();
    let sigma_min = ts
        .records()
        .iter()
        .filter_map(|r| r.values.get("invariant.entropy_production"))
        .fold(f64::INFINITY, |m, &v| m.min(v));
    assert!(
        sigma_min.is_finite() && sigma_min >= -1e-9,
        "entropy production went negative: {sigma_min:.3e}"
    );

    let steps = snap.counter("invariant.steps");
    eprintln!(
        "monitored {steps} steps: mass {:.2e}, momentum {:.2e}, energy {:.2e} \
         (max rel drift); min entropy production {:.3e}",
        gauge("invariant.mass.drift_max"),
        gauge("invariant.momentum.drift_max"),
        gauge("invariant.energy.drift_max"),
        sigma_min
    );

    let entries = vec![
        ("invariant.steps".to_string(), steps as f64),
        (
            "invariant.mass.drift_max".to_string(),
            gauge("invariant.mass.drift_max"),
        ),
        (
            "invariant.momentum.drift_max".to_string(),
            gauge("invariant.momentum.drift_max"),
        ),
        (
            "invariant.energy.drift_max".to_string(),
            gauge("invariant.energy.drift_max"),
        ),
        (
            "invariant.entropy.production_drop_max".to_string(),
            gauge("invariant.entropy.production_drop_max"),
        ),
        ("entropy_production_min".to_string(), sigma_min),
        (
            "invariant.violations".to_string(),
            snap.counter("invariant.violations") as f64,
        ),
    ];
    let path = write_bench_json("BENCH_invariants.json", &entries);
    eprintln!("wrote {}", path.display());
}
