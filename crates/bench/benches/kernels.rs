//! Micro-benchmarks of the Landau kernels and the §III-F assembly-path
//! ablation. Plain timing harness (`harness = false`): run with
//! `cargo bench -p landau-bench --bench kernels`. Mean seconds per
//! iteration for every case land in `BENCH_kernels.json` at the
//! workspace root.

use landau_bench::write_bench_json;
use landau_core::ipdata::IpData;
use landau_core::kernels::{
    assemble_atomic, assemble_setvalues, inner_integral_cpu, inner_integral_cpu_cached,
    inner_integral_cuda_model, inner_integral_cuda_model_cached, inner_integral_kokkos_cached,
    inner_integral_kokkos_model, landau_element_matrices, mass_element_matrices,
};
use landau_core::species::{Species, SpeciesList};
use landau_core::tensor::landau_tensor_2d;
use landau_core::TensorTable;
use landau_fem::assemble::csr_pattern;
use landau_fem::FemSpace;
use landau_mesh::presets::{MeshSpec, RefineShell};
use landau_vgpu::kokkos::PlainFactory;
use std::hint::black_box;
use std::time::Instant;

/// Time `body` for `iters` iterations, print the mean time per iteration
/// and record it (in seconds) under `name` in `results`.
fn bench<R>(
    results: &mut Vec<(String, f64)>,
    name: &str,
    iters: usize,
    mut body: impl FnMut() -> R,
) {
    // One warm-up pass keeps lazily-initialised state out of the timing.
    black_box(body());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(body());
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    if per_iter >= 1e-3 {
        println!("{name:<40} {:>10.3} ms/iter", per_iter * 1e3);
    } else {
        println!("{name:<40} {:>10.3} µs/iter", per_iter * 1e6);
    }
    results.push((name.replace('/', "_"), per_iter));
}

fn setup() -> (FemSpace, SpeciesList, IpData) {
    let spec = MeshSpec {
        domain_radius: 4.0,
        base_level: 1,
        shells: vec![RefineShell {
            radius: 2.0,
            max_cell_size: 1.0,
        }],
        tail_box: None,
    };
    let space = FemSpace::new(spec.build(), 3);
    let sl = SpeciesList::new(vec![
        Species::electron(),
        Species {
            name: "i+".into(),
            mass: 2.0,
            charge: 1.0,
            density: 1.0,
            temperature: 0.7,
        },
    ]);
    let mut ip = IpData::new(&space, &sl);
    let nd = space.n_dofs;
    let mut state = vec![0.0; 2 * nd];
    for (s, sp) in sl.list.iter().enumerate() {
        state[s * nd..(s + 1) * nd]
            .copy_from_slice(&space.interpolate(|r, z| sp.maxwellian(r, z, 0.0)));
    }
    ip.pack(&space, &state);
    (space, sl, ip)
}

fn main() {
    let mut results: Vec<(String, f64)> = Vec::new();
    let r = &mut results;
    bench(r, "landau_tensor_2d", 100_000, || {
        landau_tensor_2d(
            black_box(0.53),
            black_box(-0.21),
            black_box(1.17),
            black_box(0.84),
        )
    });

    let (space, sl, ip) = setup();
    bench(r, "inner_integral/cpu", 10, || inner_integral_cpu(&ip, &sl));
    bench(r, "inner_integral/cuda_model", 10, || {
        inner_integral_cuda_model(&ip, &sl, 16)
    });
    bench(r, "inner_integral/kokkos_model", 10, || {
        inner_integral_kokkos_model(&ip, &sl, 16)
    });

    let table = TensorTable::build(&ip, usize::MAX);
    bench(r, "inner_integral/cpu_cached", 10, || {
        inner_integral_cpu_cached(&ip, &sl, &table)
    });
    bench(r, "inner_integral/cuda_model_cached", 10, || {
        inner_integral_cuda_model_cached(&ip, &sl, 16, &table)
    });
    bench(r, "inner_integral/kokkos_model_cached", 10, || {
        inner_integral_kokkos_cached(&ip, &sl, 16, &table, &PlainFactory)
    });
    let recompute = TensorTable::build(&ip, 0);
    bench(r, "inner_integral/cpu_recompute", 10, || {
        inner_integral_cpu_cached(&ip, &sl, &recompute)
    });

    let (coeffs, _) = inner_integral_cpu(&ip, &sl);
    let (ce, _) = landau_element_matrices(&space, &sl, &ip, &coeffs);
    let pat = csr_pattern(&space);
    bench(r, "assembly/transform_element_matrices", 20, || {
        landau_element_matrices(&space, &sl, &ip, &coeffs)
    });
    {
        let mut mats = vec![pat.clone(), pat.clone()];
        bench(r, "assembly/setvalues", 20, || {
            assemble_setvalues(&space, 2, &ce, &mut mats)
        });
    }
    {
        let mut mats = vec![pat.clone(), pat.clone()];
        bench(r, "assembly/atomic", 20, || {
            assemble_atomic(&space, 2, &ce, &mut mats)
        });
    }
    bench(r, "assembly/mass_kernel", 20, || {
        mass_element_matrices(&space, 2, &ip, 1.0)
    });

    let path = write_bench_json("BENCH_kernels.json", &results);
    println!("wrote {}", path.display());
}
