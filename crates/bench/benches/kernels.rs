//! Criterion micro-benchmarks of the Landau kernels and the §III-F
//! assembly-path ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use landau_core::ipdata::IpData;
use landau_core::kernels::{
    assemble_atomic, assemble_setvalues, inner_integral_cpu, inner_integral_cuda_model,
    inner_integral_kokkos_model, landau_element_matrices, mass_element_matrices,
};
use landau_core::species::{Species, SpeciesList};
use landau_core::tensor::landau_tensor_2d;
use landau_fem::assemble::csr_pattern;
use landau_fem::FemSpace;
use landau_mesh::presets::{MeshSpec, RefineShell};
use std::hint::black_box;

fn setup() -> (FemSpace, SpeciesList, IpData) {
    let spec = MeshSpec {
        domain_radius: 4.0,
        base_level: 1,
        shells: vec![RefineShell {
            radius: 2.0,
            max_cell_size: 1.0,
        }],
        tail_box: None,
    };
    let space = FemSpace::new(spec.build(), 3);
    let sl = SpeciesList::new(vec![
        Species::electron(),
        Species {
            name: "i+".into(),
            mass: 2.0,
            charge: 1.0,
            density: 1.0,
            temperature: 0.7,
        },
    ]);
    let mut ip = IpData::new(&space, &sl);
    let nd = space.n_dofs;
    let mut state = vec![0.0; 2 * nd];
    for (s, sp) in sl.list.iter().enumerate() {
        state[s * nd..(s + 1) * nd]
            .copy_from_slice(&space.interpolate(|r, z| sp.maxwellian(r, z, 0.0)));
    }
    ip.pack(&space, &state);
    (space, sl, ip)
}

fn bench_tensor(c: &mut Criterion) {
    c.bench_function("landau_tensor_2d", |b| {
        b.iter(|| {
            black_box(landau_tensor_2d(
                black_box(0.53),
                black_box(-0.21),
                black_box(1.17),
                black_box(0.84),
            ))
        })
    });
}

fn bench_inner_integral(c: &mut Criterion) {
    let (_space, sl, ip) = setup();
    let mut g = c.benchmark_group("inner_integral");
    g.sample_size(10);
    g.bench_function("cpu", |b| b.iter(|| inner_integral_cpu(&ip, &sl)));
    g.bench_function("cuda_model", |b| {
        b.iter(|| inner_integral_cuda_model(&ip, &sl, 16))
    });
    g.bench_function("kokkos_model", |b| {
        b.iter(|| inner_integral_kokkos_model(&ip, &sl, 16))
    });
    g.finish();
}

fn bench_assembly(c: &mut Criterion) {
    let (space, sl, ip) = setup();
    let (coeffs, _) = inner_integral_cpu(&ip, &sl);
    let (ce, _) = landau_element_matrices(&space, &sl, &ip, &coeffs);
    let pat = csr_pattern(&space);
    let mut g = c.benchmark_group("assembly");
    g.sample_size(20);
    g.bench_function("transform_element_matrices", |b| {
        b.iter(|| landau_element_matrices(&space, &sl, &ip, &coeffs))
    });
    g.bench_function("setvalues", |b| {
        let mut mats = vec![pat.clone(), pat.clone()];
        b.iter(|| assemble_setvalues(&space, 2, &ce, &mut mats))
    });
    g.bench_function("atomic", |b| {
        let mut mats = vec![pat.clone(), pat.clone()];
        b.iter(|| assemble_atomic(&space, 2, &ce, &mut mats))
    });
    g.bench_function("mass_kernel", |b| {
        b.iter(|| mass_element_matrices(&space, 2, &ip, 1.0))
    });
    g.finish();
}

criterion_group!(benches, bench_tensor, bench_inner_integral, bench_assembly);
criterion_main!(benches);
