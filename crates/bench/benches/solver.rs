//! Benchmarks of the direct solver (§III-G ablation: banded LU vs dense
//! LU; RCM vs natural ordering). Plain timing harness (`harness = false`):
//! run with `cargo bench -p landau-bench --bench solver`.

use landau_math::dense::{DenseLu, DenseMatrix};
use landau_sparse::band::BandMatrix;
use landau_sparse::csr::Csr;
use landau_sparse::rcm::{bandwidth, rcm_order};
use std::hint::black_box;
use std::time::Instant;

/// Time `body` for `iters` iterations and print mean time per iteration.
fn bench<R>(name: &str, iters: usize, mut body: impl FnMut() -> R) {
    black_box(body());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(body());
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    if per_iter >= 1e-3 {
        println!("{name:<40} {:>10.3} ms/iter", per_iter * 1e3);
    } else {
        println!("{name:<40} {:>10.3} µs/iter", per_iter * 1e6);
    }
}

/// A 2D 5-point-grid-like SPD system of dimension n = k².
fn grid_system(k: usize) -> Csr {
    let n = k * k;
    let mut cols = vec![Vec::new(); n];
    let idx = |x: usize, y: usize| y * k + x;
    for y in 0..k {
        for x in 0..k {
            let u = idx(x, y);
            cols[u].push(u);
            if x > 0 {
                cols[u].push(idx(x - 1, y));
            }
            if x + 1 < k {
                cols[u].push(idx(x + 1, y));
            }
            if y > 0 {
                cols[u].push(idx(x, y - 1));
            }
            if y + 1 < k {
                cols[u].push(idx(x, y + 1));
            }
        }
    }
    let mut a = Csr::from_pattern(n, n, &cols);
    for i in 0..n {
        for kk in a.row_ptr[i]..a.row_ptr[i + 1] {
            a.vals[kk] = if a.col_idx[kk] == i { 4.5 } else { -1.0 };
        }
    }
    a
}

fn main() {
    let k = 18; // n = 324, the Landau-block size class
    let a = grid_system(k);
    let n = a.n_rows;
    let perm = rcm_order(&a);
    let pa = a.permute_symmetric(&perm);
    let bw = bandwidth(&pa);
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();

    bench(&format!("direct_solver/band_lu_rcm_bw{bw}"), 20, || {
        let mut m = BandMatrix::from_csr(&pa);
        m.factor().unwrap();
        let mut x = b.clone();
        m.solve_into(&mut x);
        x
    });

    let bw_nat = bandwidth(&a);
    bench(
        &format!("direct_solver/band_lu_natural_bw{bw_nat}"),
        20,
        || {
            let mut m = BandMatrix::from_csr(&a);
            m.factor().unwrap();
            let mut x = b.clone();
            m.solve_into(&mut x);
            x
        },
    );

    let d = {
        let mut d = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for kk in a.row_ptr[i]..a.row_ptr[i + 1] {
                d[(i, a.col_idx[kk])] = a.vals[kk];
            }
        }
        d
    };
    bench("direct_solver/dense_lu", 20, || {
        let lu = DenseLu::factor(&d).unwrap();
        lu.solve(&b)
    });
}
