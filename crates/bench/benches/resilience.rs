//! Recovery-overhead benchmark on the §V performance problem (Table II's
//! 80-element Q3 mesh, 10 species).
//!
//! Four gates:
//!   1. *Bitwise* — the guarded paths (`try_step` with `FaultPlan::none()`
//!      armed, and the full `AdaptiveStepper` fast path) must produce
//!      bit-for-bit the same states as the plain `step`: the resilience
//!      machinery costs nothing in arithmetic.
//!   2. *Timing* — fault-free guarded stepping must stay within a few
//!      percent of the plain path (the disarmed fault poll is one atomic
//!      load per assemble; the recovery wrapper adds one branch per step).
//!   3. *Recovery* — a seeded transient NaN burst must be survived, and
//!      its cost (extra attempts) is reported.
//!   4. *Observability* — span/metric recording must leave the state
//!      bitwise unchanged, and its time cost (`obs_overhead_frac`,
//!      min-of-3 ABAB interleave against recording-off runs) is reported
//!      for the bench_gate's <2% ceiling.
//!   5. *Invariant monitoring* — a Record-mode [`ConservationMonitor`]
//!      must also leave the state bitwise unchanged (it only *reads*
//!      moments, residual and entropy), and its cost
//!      (`monitor_overhead_frac`, same ABAB min-of-3 protocol) sits
//!      under the same 2% ceiling.
//!   6. *Checkpointing* — a batched advance checkpointing every macro
//!      step must stay bitwise identical to one that never does, with
//!      write cost (`ckpt_overhead_frac`, ABAB min-of-3) under 2%.
//!   7. *Kill–resume* — a run killed mid-way and resumed from its last
//!      checkpoint must land bitwise on the uninterrupted trajectory.
//!   8. *Corruption matrix* — flipping any byte of a checkpoint frame
//!      must be detected at decode; `ckpt_silent_restores` gates at 0.
//!
//! Plain timing harness (`harness = false`):
//! `cargo bench -p landau-bench --bench resilience -- --quick`.
//! Results land in `BENCH_resilience.json` at the workspace root.

use landau_bench::{perf_operator, write_bench_json};
use landau_core::ckpt::{decode_frame, encode_frame};
use landau_core::fault_sites::SITE_LANDAU_JACOBIAN;
use landau_core::operator::Backend;
use landau_core::solver::{ThetaMethod, TimeIntegrator};
use landau_core::tensor_cache::DEFAULT_BUDGET_BYTES;
use landau_core::{
    AdaptiveStepper, BatchedAdvance, CheckpointPolicy, ConservationMonitor, FaultKind, FaultPlan,
    MemStorage, Watchdog,
};
use landau_obs::MetricRegistry;
use std::sync::Arc;
use std::time::Instant;

fn make_ti() -> TimeIntegrator {
    let op = perf_operator(80, Backend::Cpu);
    let mut ti = TimeIntegrator::new(op, ThetaMethod::BackwardEuler);
    ti.rtol = 1e-6;
    ti
}

/// Advance `steps` plain steps; returns (final state, iters, seconds).
fn run_plain(steps: usize, dt: f64) -> (Vec<f64>, usize, f64) {
    let mut ti = make_ti();
    let mut state = ti.op.initial_state();
    let t0 = Instant::now();
    let mut iters = 0;
    for _ in 0..steps {
        iters += ti.step(&mut state, dt, 0.0, None).newton_iters;
    }
    (state, iters, t0.elapsed().as_secs_f64())
}

/// Same run through the recovery wrapper with an empty plan armed.
fn run_guarded(steps: usize, dt: f64) -> (Vec<f64>, usize, f64) {
    let ti = make_ti();
    let mut stepper = AdaptiveStepper::new(ti);
    stepper.ti.op.device.arm_faults(FaultPlan::none());
    let mut state = stepper.ti.op.initial_state();
    let t0 = Instant::now();
    let mut iters = 0;
    for _ in 0..steps {
        let (st, rec) = stepper
            .advance(&mut state, dt, 0.0, None)
            .expect("fault-free run must not fail");
        assert_eq!(rec.retried, 0, "fault-free run must not retry");
        iters += st.newton_iters;
    }
    (state, iters, t0.elapsed().as_secs_f64())
}

/// Guarded run with a Record-mode conservation monitor installed
/// (private registry, so repeated runs don't accumulate globally).
fn run_monitored(steps: usize, dt: f64) -> (Vec<f64>, usize, f64) {
    let mut ti = make_ti();
    let mon = ConservationMonitor::new(&ti.op, Watchdog::recording())
        .with_registry(Arc::new(MetricRegistry::new()));
    ti.monitor = Some(mon);
    let mut stepper = AdaptiveStepper::new(ti);
    stepper.ti.op.device.arm_faults(FaultPlan::none());
    let mut state = stepper.ti.op.initial_state();
    let t0 = Instant::now();
    let mut iters = 0;
    for _ in 0..steps {
        let (st, rec) = stepper
            .advance(&mut state, dt, 0.0, None)
            .expect("monitored fault-free run must not fail");
        assert_eq!(rec.retried, 0, "monitored fault-free run must not retry");
        iters += st.newton_iters;
    }
    (state, iters, t0.elapsed().as_secs_f64())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let steps = if quick { 2 } else { 6 };
    let dt = 0.5;

    // Warm-up pass so neither timed path pays first-touch costs.
    run_plain(1, dt);

    let (s_plain, it_plain, t_plain) = run_plain(steps, dt);
    let (s_guard, it_guard, t_guard) = run_guarded(steps, dt);

    // Gate 1: bitwise identity.
    let identical = s_plain.len() == s_guard.len()
        && s_plain
            .iter()
            .zip(&s_guard)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        identical,
        "guarded fault-free path diverged bitwise from the plain path"
    );
    assert_eq!(it_plain, it_guard, "iteration counts must match");
    eprintln!("bitwise: guarded == plain over {steps} steps ({it_plain} Newton iters)");

    // Gate 2: overhead. Generous bound — the two runs share one machine
    // and the work is identical; this catches an accidentally hot guard,
    // not scheduler noise.
    let overhead = t_guard / t_plain - 1.0;
    eprintln!(
        "timing: plain {:.3}s, guarded {:.3}s ({:+.1}% overhead)",
        t_plain,
        t_guard,
        100.0 * overhead
    );
    assert!(
        overhead < 0.25,
        "fault-free recovery overhead too high: {:.1}%",
        100.0 * overhead
    );

    // Gate 3: survive a transient NaN burst and report its cost.
    let ti = make_ti();
    let mut stepper = AdaptiveStepper::new(ti);
    stepper
        .ti
        .op
        .device
        .arm_faults(FaultPlan::seeded(5).with_repeated(SITE_LANDAU_JACOBIAN, 1, 2, FaultKind::Nan));
    let mut state = stepper.ti.op.initial_state();
    let t0 = Instant::now();
    let mut retried = 0usize;
    for _ in 0..steps {
        let (_, rec) = stepper
            .advance(&mut state, dt, 0.0, None)
            .expect("transient faults must be recovered");
        retried += rec.retried;
    }
    let t_faulty = t0.elapsed().as_secs_f64();
    stepper.ti.op.device.disarm_faults();
    assert!(retried > 0, "the planned faults never fired");
    eprintln!(
        "recovery: {} retried attempts over {steps} steps, {:.3}s ({:+.1}% vs clean)",
        retried,
        t_faulty,
        100.0 * (t_faulty / t_guard - 1.0)
    );

    // Gate 4: observability cost. Interleave recording-on and
    // recording-off guarded runs (ABABAB) and keep the min of each, so a
    // scheduler hiccup in either arm cannot masquerade as span overhead
    // (the true per-span cost is ~100 ns against multi-second steps; the
    // mins converge while single runs wander by several percent).
    // The overhead may legitimately come out slightly negative.
    let mut t_on = f64::INFINITY;
    let mut t_off = f64::INFINITY;
    let mut s_on = Vec::new();
    let mut s_off = Vec::new();
    for _ in 0..3 {
        landau_obs::reset_spans();
        landau_obs::set_recording(true);
        let (s, _, t) = run_guarded(steps, dt);
        t_on = t_on.min(t);
        s_on = s;
        landau_obs::set_recording(false);
        let (s, _, t) = run_guarded(steps, dt);
        t_off = t_off.min(t);
        s_off = s;
    }
    landau_obs::set_recording(true);
    let obs_overhead = if landau_obs::recording_compiled() {
        t_on / t_off - 1.0
    } else {
        0.0
    };
    let obs_identical = s_on.len() == s_off.len()
        && s_on
            .iter()
            .zip(&s_off)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        obs_identical,
        "span/metric recording changed the computed state bitwise"
    );
    eprintln!(
        "observability: recording on {t_on:.3}s, off {t_off:.3}s \
         ({:+.2}% overhead, min of 3)",
        100.0 * obs_overhead
    );

    // Gate 5: invariant-monitor cost and bitwise transparency, with the
    // same ABAB min-of-3 protocol as Gate 4.
    let mut t_mon = f64::INFINITY;
    let mut t_base = f64::INFINITY;
    let mut s_mon = Vec::new();
    let mut s_base = Vec::new();
    for _ in 0..3 {
        let (s, _, t) = run_monitored(steps, dt);
        t_mon = t_mon.min(t);
        s_mon = s;
        let (s, _, t) = run_guarded(steps, dt);
        t_base = t_base.min(t);
        s_base = s;
    }
    let monitor_overhead = t_mon / t_base - 1.0;
    let monitor_identical = s_mon.len() == s_base.len()
        && s_mon
            .iter()
            .zip(&s_base)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        monitor_identical,
        "record-mode conservation monitoring changed the state bitwise"
    );
    eprintln!(
        "invariants: monitored {t_mon:.3}s, unmonitored {t_base:.3}s \
         ({:+.2}% overhead, min of 3)",
        100.0 * monitor_overhead
    );

    // Gate 6: checkpoint cost and transparency on the batched path. Two
    // single-vertex batches follow the identical trajectory; arm A cuts a
    // checkpoint every macro step into an in-memory store, arm B never
    // does. ABAB min-of-3 timed segments, then a bitwise comparison — the
    // serializer only *reads* solver state, so the trajectories must
    // agree bit for bit.
    let base_op = perf_operator(80, Backend::Cpu);
    let mk = || {
        BatchedAdvance::new_shared(
            base_op.space.clone(),
            &base_op.species,
            Backend::Cpu,
            1,
            DEFAULT_BUDGET_BYTES,
        )
    };
    let ckpt_reg = Arc::new(MetricRegistry::new());
    let mut with_ck = mk();
    with_ck.set_metric_registry(Arc::clone(&ckpt_reg));
    with_ck.enable_checkpointing(
        Box::new(MemStorage::new()),
        2,
        CheckpointPolicy::every_steps(1),
    );
    let mut no_ck = mk();
    // Warm-up: build each batch's fused workspace outside the timed arms.
    with_ck.advance(dt, 1, 0.0);
    no_ck.advance(dt, 1, 0.0);
    // Min-of-5: the true write cost is ~0.1 ms against multi-second
    // segments, so any apparent overhead above noise level is a bug in
    // the serializer, not the storage.
    let mut t_ck = f64::INFINITY;
    let mut t_no = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        with_ck.advance(dt, steps, 0.0);
        t_ck = t_ck.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        no_ck.advance(dt, steps, 0.0);
        t_no = t_no.min(t0.elapsed().as_secs_f64());
    }
    let ckpt_overhead = t_ck / t_no - 1.0;
    let ckpt_identical = with_ck.states[0]
        .iter()
        .zip(&no_ck.states[0])
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        ckpt_identical,
        "checkpointing perturbed the batched trajectory bitwise"
    );
    // Isolated write cost: min-of-3 explicit saves.
    let mut t_write = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        with_ck
            .checkpoint_now()
            .expect("in-memory checkpoint write cannot fail");
        t_write = t_write.min(t0.elapsed().as_secs_f64());
    }
    let snap = ckpt_reg.snapshot();
    let writes = snap.counter("ckpt.writes");
    let write_bytes = snap.counter("ckpt.write_bytes");
    eprintln!(
        "checkpoint: with {t_ck:.3}s, without {t_no:.3}s ({:+.2}% overhead, min of 3); \
         {} writes, {} bytes/frame, {:.3} ms/write",
        100.0 * ckpt_overhead,
        writes,
        write_bytes / writes.max(1),
        1e3 * t_write
    );

    // Gate 7: kill–resume fidelity. An uninterrupted 2-step run vs a run
    // killed after 1 step and resumed from its checkpoint by a fresh
    // batch sharing the durable medium.
    let medium = MemStorage::new();
    let mut whole = mk();
    whole.advance(dt, 2, 0.0);
    let mut killed = mk();
    killed.enable_checkpointing(
        Box::new(medium.clone()),
        2,
        CheckpointPolicy::every_steps(1),
    );
    killed.advance(dt, 1, 0.0);
    drop(killed);
    let mut resumed = mk();
    resumed.enable_checkpointing(
        Box::new(medium.clone()),
        2,
        CheckpointPolicy::every_steps(1),
    );
    let found = resumed
        .resume_from_checkpoint()
        .expect("checkpoint must validate");
    assert!(found, "the killed run left no checkpoint");
    resumed.advance(dt, 1, 0.0);
    let resume_identical = whole.states[0].len() == resumed.states[0].len()
        && whole.states[0]
            .iter()
            .zip(&resumed.states[0])
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        resume_identical,
        "kill–resume diverged bitwise from the uninterrupted run"
    );
    eprintln!("kill–resume: bitwise identical after resume at macro step 1");

    // Gate 8: corruption matrix. Every single-byte flip of a checkpoint
    // frame must fail validation — count (and gate on) silent restores.
    let probe: Vec<u8> = (0..128).map(|i| (i * 73 % 251) as u8).collect();
    let frame = encode_frame(&probe);
    let mut silent_restores = 0u64;
    for pos in 0..frame.len() {
        for mask in [0x01u8, 0x80] {
            let mut bad = frame.clone();
            bad[pos] ^= mask;
            if decode_frame(&bad).is_ok() {
                silent_restores += 1;
            }
        }
    }
    eprintln!(
        "corruption matrix: {} byte positions x 2 masks, {} silent restores",
        frame.len(),
        silent_restores
    );

    let entries = vec![
        ("steps".to_string(), steps as f64),
        ("newton_iters".to_string(), it_plain as f64),
        ("seconds_plain".to_string(), t_plain),
        ("seconds_guarded".to_string(), t_guard),
        ("overhead_frac".to_string(), overhead),
        ("bitwise_identical".to_string(), 1.0),
        ("seconds_faulty".to_string(), t_faulty),
        ("retried_attempts".to_string(), retried as f64),
        ("obs_overhead_frac".to_string(), obs_overhead),
        ("obs_bitwise_identical".to_string(), 1.0),
        ("monitor_overhead_frac".to_string(), monitor_overhead),
        ("monitor_bitwise_identical".to_string(), 1.0),
        ("ckpt_overhead_frac".to_string(), ckpt_overhead),
        ("ckpt_bitwise_identical".to_string(), 1.0),
        ("ckpt_write_ms".to_string(), 1e3 * t_write),
        (
            "ckpt_frame_bytes".to_string(),
            (write_bytes / writes.max(1)) as f64,
        ),
        ("resume_bitwise_identical".to_string(), 1.0),
        ("ckpt_silent_restores".to_string(), silent_restores as f64),
    ];
    let path = write_bench_json("BENCH_resilience.json", &entries);
    eprintln!("wrote {}", path.display());
}
