//! Live-telemetry cost benchmark: the event journal and the OpenMetrics
//! scrape path must be cheap enough to leave on in production.
//!
//! Two gates:
//!   1. *Journal overhead* — a checkpoint-per-step batched advance (each
//!      step publishes `ckpt_write` journal events from inside the hot
//!      loop) runs with the global journal enabled vs disabled, ABAB
//!      min-of-3, and the two trajectories must agree bit for bit
//!      (`obs.journal_bitwise_identical`): publishing is observation,
//!      never arithmetic. The gated overhead fraction
//!      (`obs.journal_overhead_frac`) is the workload's event volume
//!      priced at the measured per-publish cost (its own ABAB min-of-3
//!      microbench: batched publishes against an enabled vs disabled
//!      ring) over the solve time — the marginal publish is ~100 ns
//!      against multi-second segments, far below what end-to-end
//!      timing can resolve on a shared machine, so pricing the events
//!      is the only way the 2% ceiling gates signal instead of
//!      scheduler noise.
//!   2. *Scrape latency* — an in-process [`QuenchServer`] is flooded
//!      with small quenches, then `metrics_scrape()` is called
//!      repeatedly under that warm registry. Every scrape must validate
//!      as OpenMetrics (`obs.scrape_valid`) and the p99 wall time
//!      (`serve.scrape_p99_ms`) is gated so the scrape path cannot
//!      silently grow a full-registry copy or allocation storm.
//!
//! Plain timing harness (`harness = false`):
//! `cargo bench -p landau-bench --bench obs_live -- --quick`.
//! Results land in `BENCH_obs_live.json` at the workspace root.

use landau_bench::{perf_operator, write_bench_json};
use landau_core::operator::Backend;
use landau_core::tensor_cache::DEFAULT_BUDGET_BYTES;
use landau_core::{BatchedAdvance, CheckpointPolicy, MemStorage};
use landau_obs::{Journal, MetricRegistry};
use landau_quench::QuenchConfig;
use landau_serve::rt::block_on;
use landau_serve::{JobSpec, JobStatus, QuenchServer, ServeConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let steps = if quick { 2 } else { 4 };
    let scrapes = if quick { 20 } else { 50 };
    let dt = 0.5;
    let journal = Journal::global();

    // Gate 1: journal overhead. Two batches follow the identical
    // trajectory, both checkpointing every macro step (the checkpoint
    // hook publishes a journal event per write, so the ring sees real
    // hot-loop traffic). Arm A runs with the journal enabled, arm B
    // with it disabled; ABAB interleave, min of 3, so a scheduler
    // hiccup in either arm cannot masquerade as journal cost.
    let base_op = perf_operator(80, Backend::Cpu);
    let mk = || {
        let mut b = BatchedAdvance::new_shared(
            base_op.space.clone(),
            &base_op.species,
            Backend::Cpu,
            1,
            DEFAULT_BUDGET_BYTES,
        );
        b.enable_checkpointing(
            Box::new(MemStorage::new()),
            2,
            CheckpointPolicy::every_steps(1),
        );
        b
    };
    let mut arm_on = mk();
    let mut arm_off = mk();
    // Warm-up: build each batch's fused workspace outside the timed arms.
    journal.set_enabled(true);
    arm_on.advance(dt, 1, 0.0);
    journal.set_enabled(false);
    arm_off.advance(dt, 1, 0.0);
    let published_before = journal.published();
    let mut t_on = f64::INFINITY;
    let mut t_off = f64::INFINITY;
    // Alternate which arm goes first each round (AB, BA, AB) so a
    // monotone background-load drift cannot bias one arm, and keep the
    // min of each: the true per-publish cost is sub-microsecond against
    // multi-second segments, so any stable gap is a bug, and the mins
    // converge while single runs wander by several percent.
    for round in 0..3 {
        for leg in 0..2 {
            let on_leg = (round + leg) % 2 == 0;
            journal.set_enabled(on_leg);
            let arm = if on_leg { &mut arm_on } else { &mut arm_off };
            let t0 = Instant::now();
            arm.advance(dt, steps, 0.0);
            let t = t0.elapsed().as_secs_f64();
            if on_leg {
                t_on = t_on.min(t);
            } else {
                t_off = t_off.min(t);
            }
        }
    }
    journal.set_enabled(true);
    journal.drain();
    let published = journal.published() - published_before;
    assert!(published > 0, "the enabled arm published no journal events");
    let identical = arm_on.states[0].len() == arm_off.states[0].len()
        && arm_on.states[0]
            .iter()
            .zip(&arm_off.states[0])
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        identical,
        "journal recording changed the computed state bitwise"
    );

    // Per-publish cost microbench, same ABAB min-of-3 shape: batches of
    // publishes against an enabled ring (drained between batches so
    // every publish takes the full claim-write-release path) vs a
    // disabled ring (the early-out the solver pays when journalling is
    // off). The marginal cost prices the workload's event volume.
    const BATCH: usize = 32_768;
    let micro = Journal::with_capacity(BATCH * 2);
    let mut t_pub = f64::INFINITY;
    let mut t_skip = f64::INFINITY;
    for round in 0..3 {
        for leg in 0..2 {
            let on_leg = (round + leg) % 2 == 0;
            micro.set_enabled(on_leg);
            let t0 = Instant::now();
            for i in 0..BATCH {
                micro.publish(landau_obs::Event::checkpoint_write(i as u64, 0));
            }
            let t = t0.elapsed().as_secs_f64();
            if on_leg {
                t_pub = t_pub.min(t);
                micro.drain();
            } else {
                t_skip = t_skip.min(t);
            }
        }
    }
    let per_event = ((t_pub - t_skip) / BATCH as f64).max(0.0);
    let journal_overhead = published as f64 * per_event / t_on;
    eprintln!(
        "journal: enabled {t_on:.3}s, disabled {t_off:.3}s (raw {:+.2}%, min of 3); \
         {published} events at {:.0} ns/publish -> {:.4}% priced overhead",
        100.0 * (t_on / t_off - 1.0),
        1e9 * per_event,
        100.0 * journal_overhead
    );

    // Gate 2: scrape latency against a warm registry. The flood fills
    // the serve histograms and the journal, so each scrape renders a
    // realistically-sized exposition (snapshot → alerts → re-snapshot →
    // render) and must still validate.
    let registry = Arc::new(MetricRegistry::new());
    let server = QuenchServer::with_registry(
        ServeConfig {
            workers: 2,
            max_active_slices: 2,
            ..ServeConfig::default()
        },
        registry.clone(),
    );
    let cfg = QuenchConfig {
        domain: 2.0,
        cells_per_vt: 0.3,
        k_outer: 1.0,
        ion_mass: 16.0,
        t_cold: 0.15,
        dt: 0.1,
        max_equil_steps: 1,
        quench_steps: 1,
        pulse_duration: 3.0,
        mass_factor: 3.0,
        ..QuenchConfig::default()
    };
    let handles: Vec<_> = (0..4)
        .map(|i| {
            server
                .submit(
                    "obs-bench",
                    JobSpec::new(format!("scrape-j{i}"), cfg.clone()),
                )
                .expect("scrape flood admitted")
        })
        .collect();
    for h in &handles {
        assert_eq!(block_on(h.wait()), JobStatus::Completed, "flood job failed");
    }
    let mut scrape_ms: Vec<f64> = Vec::with_capacity(scrapes);
    let mut all_valid = true;
    // Warm-up scrape so first-allocation costs stay out of the samples.
    let _ = server.metrics_scrape();
    for _ in 0..scrapes {
        let t0 = Instant::now();
        let text = server.metrics_scrape();
        scrape_ms.push(1e3 * t0.elapsed().as_secs_f64());
        if landau_obs::openmetrics::validate(&text).is_err() {
            all_valid = false;
        }
    }
    scrape_ms.sort_by(|a, b| a.total_cmp(b));
    let p99 =
        scrape_ms[((0.99 * scrape_ms.len() as f64).ceil() as usize).clamp(1, scrape_ms.len()) - 1];
    assert!(all_valid, "a scrape failed OpenMetrics validation");
    eprintln!(
        "scrape: {scrapes} scrapes, p99 {p99:.3} ms (min {:.3}, max {:.3})",
        scrape_ms.first().unwrap(),
        scrape_ms.last().unwrap()
    );

    let entries = vec![
        ("obs.journal_overhead_frac".to_string(), journal_overhead),
        (
            "obs.journal_bitwise_identical".to_string(),
            if identical { 1.0 } else { 0.0 },
        ),
        ("obs.journal_events_published".to_string(), published as f64),
        ("serve.scrape_p99_ms".to_string(), p99),
        (
            "obs.scrape_valid".to_string(),
            if all_valid { 1.0 } else { 0.0 },
        ),
    ];
    let path = write_bench_json("BENCH_obs_live.json", &entries);
    println!("wrote {}", path.display());
}
