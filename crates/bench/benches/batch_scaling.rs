//! Fused batched Newton throughput vs batch size (the sequel paper's
//! batched-solver scaling figures).
//!
//! Stages:
//!   1. *Verification* — fused and host-loop advances of the same batch
//!      must agree **bitwise** on every vertex state before any timing is
//!      trusted (`batch_bitwise_identical`, gated exactly).
//!   2. *Scaling* — productive Newton iterations per second of the fused
//!      pipeline at 1/16/64/256/1024 vertices, plus the reference host
//!      loop at 256 and 1024. The fused path amortizes the per-iteration
//!      CSR/permutation/band-allocation machinery across all lanes of one
//!      batched factorization, so its advantage *grows* with batch size:
//!      the gate holds `speedup_256`/`speedup_1024` to the 2× floor while
//!      `speedup_1` is informational (a single lane cannot amortize
//!      anything).
//!
//! Plain timing harness (`harness = false`):
//! `cargo bench -p landau-bench --bench batch_scaling -- --quick`.
//! Results land in `BENCH_batch_scaling.json` at the workspace root.
//! Quick and full runs emit identical metric names (the gate fails on
//! schema drift); full mode only takes more steps.

use landau_bench::write_bench_json;
use landau_core::batch::{BatchMode, BatchedAdvance};
use landau_core::operator::Backend;
use landau_core::{Species, SpeciesList};
use landau_fem::FemSpace;
use landau_mesh::presets::{MeshSpec, RefineShell};

const COUNTS: [usize; 5] = [1, 16, 64, 256, 1024];
const DT: f64 = 0.4;

/// A small adapted mesh: large enough that every vertex runs a real
/// multi-iteration implicit solve, small enough that the 1024-vertex
/// point finishes in CI.
fn bench_space() -> FemSpace {
    let spec = MeshSpec {
        domain_radius: 4.0,
        base_level: 1,
        shells: vec![RefineShell {
            radius: 1.5,
            max_cell_size: 1.0,
        }],
        tail_box: None,
    };
    FemSpace::new(spec.build(), 2)
}

fn plasma() -> SpeciesList {
    SpeciesList::new(vec![
        Species::electron(),
        Species {
            name: "i+".into(),
            mass: 2.0,
            charge: 1.0,
            density: 1.0,
            temperature: 0.7,
        },
    ])
}

/// Advance a fresh batch and return (productive newton it/s, the stats).
fn run(
    space: &FemSpace,
    mode: BatchMode,
    n_vertices: usize,
    steps: usize,
) -> (f64, landau_core::batch::BatchStats) {
    let mut b = BatchedAdvance::new(space, &plasma(), Backend::Cpu, n_vertices);
    b.set_mode(mode);
    let stats = b.advance(DT, steps, 0.0);
    assert_eq!(stats.failed, 0, "healthy batch must not fail: {stats:?}");
    (stats.newton_per_sec, stats)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let steps = if quick { 2 } else { 6 };
    let mut json: Vec<(String, f64)> = Vec::new();
    let space = bench_space();

    // --- Stage 1: bitwise gate -------------------------------------------
    let mut host = BatchedAdvance::new(&space, &plasma(), Backend::Cpu, 8);
    host.set_mode(BatchMode::HostLoop);
    let hs = host.advance(DT, steps, 0.0);
    let mut fused = BatchedAdvance::new(&space, &plasma(), Backend::Cpu, 8);
    let fs = fused.advance(DT, steps, 0.0);
    let identical = host.states.iter().zip(&fused.states).all(|(a, b)| {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    });
    println!(
        "verify: fused vs host loop on 8 vertices x {steps} steps: {} \
         ({} vs {} Newton iters)",
        if identical {
            "bitwise identical"
        } else {
            "MISMATCH"
        },
        fs.newton_iters,
        hs.newton_iters,
    );
    assert!(identical, "fused pipeline diverged from the host loop");
    assert_eq!(fs.newton_iters, hs.newton_iters);
    json.push(("batch_bitwise_identical".into(), 1.0));

    // --- Stage 2: throughput scaling -------------------------------------
    println!(
        "\n{:>9} {:>14} {:>10} {:>12} {:>10}",
        "vertices", "newton it/s", "launches", "lanes/launch", "seconds"
    );
    let mut fused_at = std::collections::BTreeMap::new();
    for &nv in &COUNTS {
        let (nps, st) = run(&space, BatchMode::Fused, nv, steps);
        let lanes_per_launch = if st.launches == 0 {
            0.0
        } else {
            st.active_lane_sum as f64 / st.launches as f64
        };
        println!(
            "{nv:>9} {nps:>14.1} {:>10} {lanes_per_launch:>12.1} {:>10.2}",
            st.launches, st.seconds
        );
        json.push((format!("newton_per_sec_fused_{nv}"), nps));
        fused_at.insert(nv, nps);
    }
    for &nv in &[256usize, 1024] {
        let (nps, st) = run(&space, BatchMode::HostLoop, nv, steps);
        println!(
            "{nv:>9} {nps:>14.1} {:>10} {:>12} {:>10.2} (host loop)",
            0, "-", st.seconds
        );
        json.push((format!("newton_per_sec_host_{nv}"), nps));
        let speedup = fused_at[&nv] / nps;
        println!("          speedup at {nv}: {speedup:.2}x (gate: >= 2.0x)");
        json.push((format!("speedup_{nv}"), speedup));
    }
    // Single-vertex fused vs itself is the no-amortization floor; report
    // the scaling ratio so regressions in large-batch amortization show
    // up even if absolute rates drift.
    json.push((
        "fused_scaling_256_over_1".into(),
        fused_at[&256] / fused_at[&1],
    ));

    let path = write_bench_json("BENCH_batch_scaling.json", &json);
    println!("wrote {}", path.display());

    for nv in [256usize, 1024] {
        let speedup = json
            .iter()
            .find(|(n, _)| *n == format!("speedup_{nv}"))
            .unwrap()
            .1;
        assert!(
            speedup >= 2.0,
            "fused speedup at {nv} vertices {speedup:.2}x below the 2x acceptance gate"
        );
    }
}
