//! Cached vs uncached Landau assembly throughput on the §V performance
//! problem (Table II's 80-element Q3 mesh, 10 species).
//!
//! Three stages:
//!   1. *Verification* — cached and uncached `IpCoeffs` must agree to
//!      ≤1e-14 relative under all three backends (CPU, CUDA model,
//!      Kokkos model) before any timing is trusted.
//!   2. *Throughput* — Newton iterations per second of a real implicit
//!      solve, with and without the geometry cache. The cache must win
//!      by at least 2× (the table replaces the 140-flop elliptic-integral
//!      tensor evaluation with a 56-byte stream per pair).
//!   3. *Memory* — table footprint plus the heap a 256-vertex batched
//!      advance saves by sharing one `FemSpace` instead of cloning it.
//!
//! Plain timing harness (`harness = false`):
//! `cargo bench -p landau-bench --bench tensor_cache -- --quick`.
//! Results land in `BENCH_tensor_cache.json` at the workspace root.

use landau_bench::{perf_operator, write_bench_json};
use landau_core::ipdata::IpData;
use landau_core::kernels::{
    inner_integral_cpu, inner_integral_cpu_cached, inner_integral_cuda_model,
    inner_integral_cuda_model_cached, inner_integral_kokkos_cached, inner_integral_kokkos_model,
};
use landau_core::operator::Backend;
use landau_core::solver::{ThetaMethod, TimeIntegrator};
use landau_core::tensor_cache::DEFAULT_BUDGET_BYTES;
use landau_core::TensorTable;
use landau_vgpu::kokkos::PlainFactory;
use std::time::Instant;

/// Run `steps` implicit steps and return (newton iterations, seconds).
fn solve(cached: bool, steps: usize, dt: f64) -> (usize, f64) {
    let op = perf_operator(80, Backend::Cpu);
    let mut ti = TimeIntegrator::new(op, ThetaMethod::BackwardEuler);
    ti.rtol = 1e-6;
    if cached {
        ti.enable_tensor_cache(DEFAULT_BUDGET_BYTES);
    }
    let mut state = ti.op.initial_state();
    let t0 = Instant::now();
    let mut iters = 0usize;
    for _ in 0..steps {
        iters += ti.step(&mut state, dt, 0.0, None).newton_iters;
    }
    (iters, t0.elapsed().as_secs_f64())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let steps = if quick { 2 } else { 8 };
    let mut json: Vec<(String, f64)> = Vec::new();

    // --- Stage 1: correctness gate on the Table-II mesh ------------------
    let op = perf_operator(80, Backend::Cpu);
    let state = op.initial_state();
    let mut ip = IpData::new(&op.space, &op.species);
    ip.pack(&op.space, &state);
    let n = ip.n;
    let table = TensorTable::build(&ip, usize::MAX);
    println!(
        "table: N = {n} integration points, {:.1} MiB ({:?})",
        table.table_bytes() as f64 / (1 << 20) as f64,
        table.mode()
    );
    let (r_cpu, _) = inner_integral_cpu(&ip, &op.species);
    let (r_cuda, _) = inner_integral_cuda_model(&ip, &op.species, 16);
    let (r_kk, _) = inner_integral_kokkos_model(&ip, &op.species, 8);
    let (c_cpu, _) = inner_integral_cpu_cached(&ip, &op.species, &table);
    let (c_cuda, _) = inner_integral_cuda_model_cached(&ip, &op.species, 16, &table);
    let (c_kk, _) = inner_integral_kokkos_cached(&ip, &op.species, 8, &table, &PlainFactory);
    for (name, diff) in [
        ("cpu", r_cpu.max_rel_diff(&c_cpu)),
        ("cuda_model", r_cuda.max_rel_diff(&c_cuda)),
        ("kokkos_model", r_kk.max_rel_diff(&c_kk)),
    ] {
        println!("verify {name:<14} cached vs uncached rel diff {diff:.3e}");
        assert!(
            diff <= 1e-14,
            "{name}: cached diverged from uncached: {diff:e}"
        );
        json.push((format!("verify_rel_diff_{name}"), diff));
    }
    json.push(("table_bytes".into(), table.table_bytes() as f64));

    // --- Stage 2: Newton-iterations/sec, uncached vs cached --------------
    let dt = 0.05;
    let (it_u, s_u) = solve(false, steps, dt);
    let (it_c, s_c) = solve(true, steps, dt);
    let nps_u = it_u as f64 / s_u;
    let nps_c = it_c as f64 / s_c;
    let speedup = nps_c / nps_u;
    println!("uncached: {it_u} Newton iters in {s_u:.2}s = {nps_u:.2} it/s");
    println!("cached:   {it_c} Newton iters in {s_c:.2}s = {nps_c:.2} it/s");
    println!("speedup:  {speedup:.2}x (gate: >= 2.0x)");
    json.push(("newton_per_sec_uncached".into(), nps_u));
    json.push(("newton_per_sec_cached".into(), nps_c));
    json.push(("speedup".into(), speedup));

    // --- Stage 3: batched-advance memory accounting -----------------------
    let heap = op.space.approx_heap_bytes();
    let saved_256 = heap * 255;
    println!(
        "shared FemSpace: {:.2} MiB heap; 256-vertex batch saves {:.1} MiB \
         vs per-vertex clones",
        heap as f64 / (1 << 20) as f64,
        saved_256 as f64 / (1 << 20) as f64
    );
    json.push(("space_heap_bytes".into(), heap as f64));
    json.push(("batch256_bytes_saved".into(), saved_256 as f64));

    let path = write_bench_json("BENCH_tensor_cache.json", &json);
    println!("wrote {}", path.display());

    assert!(
        speedup >= 2.0,
        "geometry cache speedup {speedup:.2}x below the 2x acceptance gate"
    );
}
