//! Per-tenant fair slice scheduling.
//!
//! Jobs do not run to completion: they run in *budgeted slices* (a fixed
//! number of driver steps via `QuenchDriver::run_budgeted`) and must hold
//! a [`SlicePermit`] for each slice. The scheduler hands out at most
//! `max_active` permits at a time and picks who gets the next one by
//! **start-time fair queueing over tenants**: each tenant accumulates
//! `service` (slices granted, weighted by the inverse of its quota), and
//! the backlogged tenant with the smallest normalized service is granted
//! next (ties break on tenant name, so the grant sequence is a pure
//! function of the submission sequence — the loadtest and the starvation
//! test depend on that determinism).
//!
//! Starvation bound: with quotas `q_t`, between two consecutive grants to
//! a backlogged tenant `t` every other tenant `u` receives at most
//! `ceil(q_u / q_t) + 1` grants. An idle tenant's service clock is clamped
//! up to the backlogged minimum on re-arrival, so sleeping never banks
//! credit.

use crate::job::JobId;
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One queued slice request.
struct Waiter {
    ticket: u64,
    job: JobId,
    waker: Option<Waker>,
    granted: bool,
}

struct TenantState {
    quota: u64,
    /// Normalized service: slices granted × (weight_scale / quota).
    service: u128,
    /// Start tag: `service` *before* the most recent charge. New arrivals
    /// are clamped to the minimum backlogged start tag (not the finish
    /// tag), so a tenant arriving mid-slice still contends fairly for the
    /// very next grant.
    start: u128,
    waiting: Vec<Waiter>,
}

/// Common denominator so integer service increments stay exact across
/// different quotas (quota q advances service by SCALE/q per slice).
const SCALE: u128 = 720_720; // lcm(1..=16), covers practical quota ratios

struct SchedState {
    tenants: BTreeMap<String, TenantState>,
    active: usize,
    max_active: usize,
    next_ticket: u64,
    grant_log: Vec<(String, JobId)>,
}

impl SchedState {
    /// Grant permits while capacity remains: smallest normalized service
    /// among backlogged tenants wins, FIFO within a tenant.
    fn pump(&mut self) -> Vec<Waker> {
        let mut woken = Vec::new();
        while self.active < self.max_active {
            let next = self
                .tenants
                .iter()
                .filter(|(_, t)| t.waiting.iter().any(|w| !w.granted))
                .min_by(|(na, a), (nb, b)| a.service.cmp(&b.service).then(na.cmp(nb)))
                .map(|(name, _)| name.clone());
            let Some(name) = next else { break };
            let t = self.tenants.get_mut(&name).expect("tenant exists");
            let w = t
                .waiting
                .iter_mut()
                .find(|w| !w.granted)
                .expect("backlogged tenant has an ungranted waiter");
            w.granted = true;
            if let Some(waker) = w.waker.take() {
                woken.push(waker);
            }
            t.start = t.service;
            t.service += SCALE / u128::from(t.quota.max(1));
            self.active += 1;
            self.grant_log.push((name, w.job));
        }
        woken
    }

    fn min_backlogged_start(&self) -> Option<u128> {
        self.tenants
            .values()
            .filter(|t| !t.waiting.is_empty())
            .map(|t| t.start)
            .min()
    }
}

/// The fair slice scheduler (shared by the server and every job task).
#[derive(Clone)]
pub struct FairScheduler {
    state: Arc<Mutex<SchedState>>,
}

impl FairScheduler {
    /// A scheduler allowing `max_active` concurrent slices.
    pub fn new(max_active: usize) -> FairScheduler {
        FairScheduler {
            state: Arc::new(Mutex::new(SchedState {
                tenants: BTreeMap::new(),
                active: 0,
                max_active: max_active.max(1),
                next_ticket: 0,
                grant_log: Vec::new(),
            })),
        }
    }

    /// Declare (or update) a tenant's fairness quota. Quotas are relative
    /// weights; a tenant with twice the quota receives twice the slice
    /// rate under contention. Unknown tenants submitting jobs get quota 1.
    pub fn set_quota(&self, tenant: &str, quota: u64) {
        let mut s = lock(&self.state);
        let min = s.min_backlogged_start().unwrap_or(0);
        let t = s.tenants.entry(tenant.to_string()).or_insert(TenantState {
            quota: 1,
            service: min,
            start: min,
            waiting: Vec::new(),
        });
        t.quota = quota.max(1);
    }

    /// Queue a slice request for `job` owned by `tenant`; the returned
    /// future resolves to a [`SlicePermit`] when the scheduler picks it.
    pub fn acquire(&self, tenant: &str, job: JobId) -> Acquire {
        let ticket = {
            let mut s = lock(&self.state);
            let ticket = s.next_ticket;
            s.next_ticket += 1;
            // Re-arriving after idleness must not replay banked credit.
            let clamp = s.min_backlogged_start().unwrap_or(0);
            let t = s.tenants.entry(tenant.to_string()).or_insert(TenantState {
                quota: 1,
                service: clamp,
                start: clamp,
                waiting: Vec::new(),
            });
            if t.waiting.is_empty() {
                t.service = t.service.max(clamp);
                t.start = t.start.max(clamp);
            }
            t.waiting.push(Waiter {
                ticket,
                job,
                waker: None,
                granted: false,
            });
            ticket
        };
        self.pump_and_wake();
        Acquire {
            sched: self.clone(),
            tenant: tenant.to_string(),
            ticket,
        }
    }

    fn pump_and_wake(&self) {
        let woken = lock(&self.state).pump();
        for w in woken {
            w.wake();
        }
    }

    fn release(&self) {
        let woken = {
            let mut s = lock(&self.state);
            s.active = s.active.saturating_sub(1);
            s.pump()
        };
        for w in woken {
            w.wake();
        }
    }

    /// The grant sequence so far: `(tenant, job)` per slice, in grant
    /// order. Deterministic for a deterministic submission sequence; the
    /// starvation test asserts interleaving bounds on it.
    pub fn grant_log(&self) -> Vec<(String, JobId)> {
        lock(&self.state).grant_log.clone()
    }

    /// Slices currently holding permits.
    pub fn active(&self) -> usize {
        lock(&self.state).active
    }
}

/// Future side of [`FairScheduler::acquire`].
pub struct Acquire {
    sched: FairScheduler,
    tenant: String,
    ticket: u64,
}

impl Future for Acquire {
    type Output = SlicePermit;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<SlicePermit> {
        let mut s = lock(&self.sched.state);
        let t = s.tenants.get_mut(&self.tenant).expect("tenant registered");
        let idx = t
            .waiting
            .iter()
            .position(|w| w.ticket == self.ticket)
            .expect("ticket still queued");
        if t.waiting[idx].granted {
            t.waiting.remove(idx);
            drop(s);
            return Poll::Ready(SlicePermit {
                sched: self.sched.clone(),
            });
        }
        t.waiting[idx].waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Held for the duration of one run slice; dropping it releases the slot
/// and lets the scheduler grant the next fairest waiter.
pub struct SlicePermit {
    sched: FairScheduler,
}

impl Drop for SlicePermit {
    fn drop(&mut self) {
        self.sched.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::block_on;

    #[test]
    fn equal_quotas_alternate_under_contention() {
        let sched = FairScheduler::new(1);
        sched.set_quota("a", 1);
        sched.set_quota("b", 1);
        // Queue 4 slices per tenant, then drain one at a time.
        let mut futs = Vec::new();
        for i in 0..4u64 {
            futs.push(sched.acquire("a", JobId(i)));
            futs.push(sched.acquire("b", JobId(100 + i)));
        }
        for _ in 0..8 {
            // Exactly one is granted at a time; find and consume it.
            let mut granted_any = false;
            futs.retain_mut(|f| {
                if granted_any {
                    return true;
                }
                let mut noop = noop_context();
                if let Poll::Ready(permit) = Pin::new(&mut *f).poll(&mut noop.1) {
                    drop(permit);
                    granted_any = true;
                    return false;
                }
                true
            });
            assert!(granted_any, "scheduler stalled");
        }
        // Releases pump eagerly, so the log may run one grant ahead of the
        // permits we consumed; judge the 8 grants we actually drove.
        let log: Vec<String> = sched
            .grant_log()
            .into_iter()
            .take(8)
            .map(|(t, _)| t)
            .collect();
        // Strict alternation a,b,a,b,… (ties break on name: a first).
        for pair in log.chunks(2) {
            assert_eq!(pair, ["a".to_string(), "b".to_string()]);
        }
    }

    #[test]
    fn quota_weights_shift_the_grant_ratio() {
        let sched = FairScheduler::new(1);
        sched.set_quota("heavy", 3);
        sched.set_quota("light", 1);
        let mut futs = Vec::new();
        for i in 0..12u64 {
            futs.push(sched.acquire("heavy", JobId(i)));
        }
        for i in 0..4u64 {
            futs.push(sched.acquire("light", JobId(100 + i)));
        }
        let mut heavy = 0;
        let mut light = 0;
        for _ in 0..8 {
            let mut granted_any = false;
            futs.retain_mut(|f| {
                if granted_any {
                    return true;
                }
                let mut noop = noop_context();
                if let Poll::Ready(permit) = Pin::new(&mut *f).poll(&mut noop.1) {
                    drop(permit);
                    granted_any = true;
                    return false;
                }
                true
            });
            assert!(granted_any);
        }
        for (t, _) in sched.grant_log().into_iter().take(8) {
            if t == "heavy" {
                heavy += 1;
            } else {
                light += 1;
            }
        }
        // 3:1 weights → among 8 grants, heavy gets 6, light gets 2.
        assert_eq!((heavy, light), (6, 2), "log {:?}", sched.grant_log());
    }

    #[test]
    fn acquire_resolves_through_the_runtime() {
        let sched = FairScheduler::new(2);
        sched.set_quota("t", 1);
        let p1 = block_on(sched.acquire("t", JobId(1)));
        let p2 = block_on(sched.acquire("t", JobId(2)));
        assert_eq!(sched.active(), 2);
        drop(p1);
        let p3 = block_on(sched.acquire("t", JobId(3)));
        drop(p2);
        drop(p3);
        assert_eq!(sched.active(), 0);
    }

    /// A waker/context pair that does nothing (polling directly in tests).
    fn noop_context() -> (std::task::Waker, Context<'static>) {
        use std::task::{RawWaker, RawWakerVTable};
        fn no(_: *const ()) {}
        fn cl(_: *const ()) -> RawWaker {
            RawWaker::new(std::ptr::null(), &VT)
        }
        static VT: RawWakerVTable = RawWakerVTable::new(cl, no, no, no);
        // SAFETY: the vtable functions ignore the data pointer entirely.
        let waker = unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), &VT)) };
        // Extend lifetime by leaking a clone; tests only.
        let w: &'static Waker = Box::leak(Box::new(waker));
        (w.clone(), Context::from_waker(w))
    }
}
