//! The quench job server: submission, streaming, cancel/checkpoint/resume.
//!
//! One [`QuenchServer`] owns a [`crate::rt::Runtime`] (the work-stealing
//! executor), a [`FairScheduler`] (per-tenant slice fairness) and the job
//! table. A submitted job becomes an async task that loops:
//!
//! ```text
//! build driver → [acquire slice permit → run_budgeted(slice) → publish]* → finish
//! ```
//!
//! The driver slice is the only blocking section and runs while holding a
//! [`crate::scheduler::SlicePermit`]; its inner data parallelism goes
//! through the persistent `landau-par` pool. Everything the API exposes —
//! status, record streams, `wait()` — is lock-then-release state reads
//! plus [`Notify`] wake-ups; no lock is ever held across an `.await`
//! (lint E009 enforces this crate-wide).

use crate::job::{JobId, JobSpec, JobState, JobStatus, RejectReason, Rejected};
use crate::rt::Runtime;
use crate::scheduler::FairScheduler;
use crate::sync::Notify;
use landau_core::ckpt::{CheckpointPolicy, MemStorage, Storage};
use landau_obs::timeseries::{Record, SeriesSink};
use landau_obs::{
    AlertMode, Event, EventKind, Firing, Journal, MetricRegistry, SloViolation, SloWatchdog,
    TraceCtx,
};
use landau_quench::{QuenchDriver, RunOutcome};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Executor worker threads (slices run here; inner sweeps go through
    /// the `landau-par` pool).
    pub workers: usize,
    /// Concurrent slice permits. Defaults to `workers`.
    pub max_active_slices: usize,
    /// Per-tenant bound on queued+running jobs (admission control).
    pub max_in_flight_per_tenant: usize,
    /// Server-wide bound on queued+running jobs.
    pub max_in_flight_total: usize,
    /// Floor for the `retry_after_ms` backoff hint on rejection.
    pub min_retry_after_ms: u64,
    /// Checkpoint generations kept per job.
    pub keep_checkpoints: usize,
    /// SLO watchdog mode: [`AlertMode::Record`] publishes `alert.*` and
    /// keeps serving; [`AlertMode::Fail`] makes
    /// [`QuenchServer::check_slos`] report breaches as errors.
    pub alert_mode: AlertMode,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(4);
        ServeConfig {
            workers,
            max_active_slices: workers,
            max_in_flight_per_tenant: 64,
            max_in_flight_total: 256,
            min_retry_after_ms: 25,
            keep_checkpoints: 2,
            alert_mode: AlertMode::Record,
        }
    }
}

/// One job's shared record: everything the API reads and the job task
/// writes.
pub(crate) struct JobEntry {
    id: JobId,
    tenant: Arc<str>,
    spec: JobSpec,
    /// Budgeted slices granted so far (the trace context's slice index;
    /// monotonic across resumes).
    slices: AtomicU64,
    /// Step-level physics timeseries the driver publishes into; record
    /// streams read it through a cursor.
    series: Arc<SeriesSink>,
    /// Checkpoint medium prototype; each driver (re)build clones a fresh
    /// handle to the same medium via [`Storage::clone_box`].
    storage: Mutex<Box<dyn Storage>>,
    cancel: AtomicBool,
    ckpt_requested: AtomicBool,
    notify: Notify,
    state: Mutex<JobState>,
}

struct ServerInner {
    cfg: ServeConfig,
    rt: Runtime,
    sched: FairScheduler,
    jobs: Mutex<BTreeMap<JobId, Arc<JobEntry>>>,
    next_id: AtomicU64,
    metrics: Arc<MetricRegistry>,
    /// Structured event sink (the process-global journal, so driver-side
    /// recovery/checkpoint events interleave with job lifecycle here).
    journal: Arc<Journal>,
    /// Burn-rate SLO rules evaluated on every scrape.
    watchdog: SloWatchdog,
    /// EMA of slice wall time in ms (drives the retry-after hint).
    slice_ms_ema: Mutex<f64>,
}

/// The async multi-tenant quench service.
#[derive(Clone)]
pub struct QuenchServer {
    inner: Arc<ServerInner>,
}

impl QuenchServer {
    /// Start a server publishing `serve.*` metrics into the process-global
    /// registry.
    pub fn new(cfg: ServeConfig) -> QuenchServer {
        QuenchServer::with_registry(cfg, MetricRegistry::global_arc())
    }

    /// Start a server with an injected metrics sink (tests, loadtest).
    pub fn with_registry(cfg: ServeConfig, metrics: Arc<MetricRegistry>) -> QuenchServer {
        // Pre-start the compute pool so the first slice doesn't pay the
        // worker spawn latency inside a measured request.
        landau_par::ensure_pool_started();
        let rt = Runtime::new(cfg.workers);
        let sched = FairScheduler::new(cfg.max_active_slices.max(1));
        let journal = Journal::global_arc();
        let watchdog = SloWatchdog::new(
            cfg.alert_mode,
            SloWatchdog::serve_rules(),
            metrics.clone(),
            journal.clone(),
        );
        QuenchServer {
            inner: Arc::new(ServerInner {
                cfg,
                rt,
                sched,
                jobs: Mutex::new(BTreeMap::new()),
                next_id: AtomicU64::new(1),
                metrics,
                journal,
                watchdog,
                slice_ms_ema: Mutex::new(0.0),
            }),
        }
    }

    /// Declare a tenant's fairness quota (relative slice weight under
    /// contention; unset tenants default to 1).
    pub fn set_tenant_quota(&self, tenant: &str, quota: u64) {
        self.inner.sched.set_quota(tenant, quota);
    }

    /// Jobs currently queued or running, per tenant and total.
    fn in_flight(&self, tenant: &str) -> (usize, usize) {
        let jobs = lock(&self.inner.jobs);
        let mut mine = 0;
        let mut total = 0;
        for e in jobs.values() {
            if lock(&e.state).status.is_terminal() {
                continue;
            }
            total += 1;
            if &*e.tenant == tenant {
                mine += 1;
            }
        }
        (mine, total)
    }

    /// Backoff hint: roughly "queue depth ahead of you × recent slice
    /// time ÷ parallelism", floored at the configured minimum.
    fn retry_after_ms(&self, total_in_flight: usize) -> u64 {
        let ema = *lock(&self.inner.slice_ms_ema);
        let lanes = self.inner.cfg.max_active_slices.max(1) as f64;
        let est = ema * total_in_flight as f64 / lanes;
        (est.ceil() as u64).clamp(self.inner.cfg.min_retry_after_ms, 10_000)
    }

    /// Submit a scenario for `tenant`. Cheap and non-blocking: admission
    /// control plus a task spawn. A full queue is rejected immediately
    /// with a retry-after hint — backpressure is the contract, not
    /// unbounded buffering.
    pub fn submit(&self, tenant: &str, spec: JobSpec) -> Result<JobHandle, Rejected> {
        let (mine, total) = self.in_flight(tenant);
        let reason = if total >= self.inner.cfg.max_in_flight_total {
            Some(RejectReason::ServerQueueFull)
        } else if mine >= self.inner.cfg.max_in_flight_per_tenant {
            Some(RejectReason::TenantQueueFull)
        } else {
            None
        };
        if let Some(reason) = reason {
            self.inner.metrics.add("serve.rejected_jobs", 1);
            return Err(Rejected {
                reason,
                retry_after_ms: self.retry_after_ms(total),
            });
        }
        let id = JobId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let entry = Arc::new(JobEntry {
            id,
            tenant: Arc::from(tenant),
            spec,
            slices: AtomicU64::new(0),
            series: Arc::new(SeriesSink::new()),
            storage: Mutex::new(Box::new(MemStorage::new())),
            cancel: AtomicBool::new(false),
            ckpt_requested: AtomicBool::new(false),
            notify: Notify::new(),
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                completed_steps: 0,
                submitted_at: Instant::now(),
                first_record_at: None,
                finished_at: None,
            }),
        });
        lock(&self.inner.jobs).insert(id, entry.clone());
        self.inner.metrics.add("serve.submitted", 1);
        self.inner
            .metrics
            .gauge_max("serve.jobs_in_flight", (total + 1) as f64);
        self.inner
            .journal
            .publish(Event::job_submitted(id.0, &entry.tenant));
        self.spawn_job_task(entry, false);
        Ok(self.handle(id))
    }

    /// Resume a cancelled (or failed) job from its newest checkpoint
    /// generation. The job keeps its id, series and storage medium; the
    /// restored driver replays from the last durable slice boundary, so
    /// the streamed timeseries is byte-identical to an uninterrupted run.
    pub fn resume(&self, id: JobId) -> Result<JobHandle, Rejected> {
        let entry = lock(&self.inner.jobs).get(&id).cloned();
        let Some(entry) = entry else {
            return Err(Rejected {
                reason: RejectReason::ServerQueueFull,
                retry_after_ms: self.inner.cfg.min_retry_after_ms,
            });
        };
        {
            let mut st = lock(&entry.state);
            if !st.status.is_terminal() || st.status == JobStatus::Completed {
                return Err(Rejected {
                    reason: RejectReason::TenantQueueFull,
                    retry_after_ms: self.inner.cfg.min_retry_after_ms,
                });
            }
            st.status = JobStatus::Queued;
            st.finished_at = None;
        }
        entry.cancel.store(false, Ordering::Release);
        self.inner.metrics.add("serve.resumed", 1);
        self.inner
            .journal
            .publish(Event::job_resumed(id.0, &entry.tenant));
        self.spawn_job_task(entry, true);
        Ok(self.handle(id))
    }

    /// Handle to an existing job.
    pub fn handle(&self, id: JobId) -> JobHandle {
        JobHandle {
            server: self.clone(),
            id,
        }
    }

    fn entry(&self, id: JobId) -> Option<Arc<JobEntry>> {
        lock(&self.inner.jobs).get(&id).cloned()
    }

    /// A fresh handle onto a job's checkpoint medium (tests and external
    /// tooling can open their own `CheckpointStore` over it).
    pub fn job_storage(&self, id: JobId) -> Option<Box<dyn Storage>> {
        let entry = self.entry(id)?;
        let medium = lock(&entry.storage);
        medium.clone_box()
    }

    /// The scheduler's grant sequence (tenant, job) — deterministic for a
    /// deterministic submission sequence; the fairness tests assert on it.
    pub fn grant_log(&self) -> Vec<(String, JobId)> {
        self.inner.sched.grant_log()
    }

    /// Cross-worker steals the executor performed so far.
    pub fn steal_count(&self) -> usize {
        self.inner.rt.steal_count()
    }

    /// Block until every submitted job has reached a terminal state.
    pub fn drain(&self) {
        self.inner.rt.wait_idle();
        self.inner
            .metrics
            .gauge_max("serve.rt_steals", self.inner.rt.steal_count() as f64);
    }

    /// The journal this server publishes lifecycle events into.
    pub fn journal(&self) -> Arc<Journal> {
        self.inner.journal.clone()
    }

    /// Render the server's metrics — plus journal publish/drop counters
    /// — as OpenMetrics text, in one snapshot-consistent pass: the SLO
    /// watchdog evaluates first, then a second snapshot is rendered so
    /// the `alert.*` families reflect this very scrape. Scrape cost is
    /// itself recorded in `serve.scrape_ms`.
    pub fn metrics_scrape(&self) -> String {
        let t0 = Instant::now();
        let mut snap = self.inner.metrics.snapshot();
        self.insert_journal_counters(&mut snap);
        self.inner.watchdog.evaluate(&snap);
        let mut snap = self.inner.metrics.snapshot();
        self.insert_journal_counters(&mut snap);
        let text = landau_obs::openmetrics::render(&snap);
        observe_ms(&self.inner.metrics, "serve.scrape_ms", t0);
        text
    }

    fn insert_journal_counters(&self, snap: &mut landau_obs::MetricSnapshot) {
        snap.counters.insert(
            "obs.journal.published".to_string(),
            self.inner.journal.published(),
        );
        snap.counters.insert(
            "obs.journal.dropped".to_string(),
            self.inner.journal.dropped(),
        );
    }

    /// Evaluate the SLO rules right now. In [`AlertMode::Fail`] breaches
    /// come back as an error; in [`AlertMode::Record`] they are returned
    /// for inspection (and published as `alert.*` either way).
    pub fn check_slos(&self) -> Result<Vec<Firing>, SloViolation> {
        let mut snap = self.inner.metrics.snapshot();
        self.insert_journal_counters(&mut snap);
        self.inner.watchdog.enforce(&snap)
    }

    /// The job loop: build the driver, then alternate permit acquisition
    /// and budgeted slices until done, failed or cancelled.
    fn spawn_job_task(&self, entry: Arc<JobEntry>, resuming: bool) {
        let inner = self.inner.clone();
        let sched = self.inner.sched.clone();
        let ctx = TraceCtx::new(entry.id.0, entry.tenant.clone());
        self.inner.rt.spawn_traced(ctx, async move {
            let mut driver = match build_driver(&inner, &entry, resuming) {
                Ok(d) => d,
                Err(msg) => {
                    finish(&inner, &entry, JobStatus::Failed(msg));
                    return;
                }
            };
            loop {
                if entry.cancel.load(Ordering::Acquire) {
                    let _ = driver.checkpoint_now();
                    finish(&inner, &entry, JobStatus::Cancelled);
                    return;
                }
                let queued_at = Instant::now();
                let permit = sched.acquire(&entry.tenant, entry.id).await;
                observe_ms(&inner.metrics, "serve.queue_wait_ms", queued_at);
                if entry.cancel.load(Ordering::Acquire) {
                    // Cancelled while queued: cut the checkpoint at the
                    // current slice boundary without burning the permit on
                    // another slice.
                    drop(permit);
                    let _ = driver.checkpoint_now();
                    finish(&inner, &entry, JobStatus::Cancelled);
                    return;
                }
                let outcome = run_slice(&inner, &entry, &mut driver);
                drop(permit);
                match outcome {
                    Ok(RunOutcome::Paused) => continue,
                    Ok(RunOutcome::Completed) => {
                        finish(&inner, &entry, JobStatus::Completed);
                        return;
                    }
                    Err(msg) => {
                        let _ = driver.checkpoint_now();
                        finish(&inner, &entry, JobStatus::Failed(msg));
                        return;
                    }
                }
            }
        });
    }
}

/// Build (or rebuild, for resume) the driver wired into the job's shared
/// series sink, the server registry and the job's checkpoint medium.
fn build_driver(
    inner: &Arc<ServerInner>,
    entry: &Arc<JobEntry>,
    resuming: bool,
) -> Result<QuenchDriver, String> {
    let _sp = landau_obs::span(landau_obs::names::SERVE_BUILD);
    let mut driver = QuenchDriver::new(entry.spec.cfg.clone());
    driver.metrics = inner.metrics.clone();
    driver.series = entry.series.clone();
    if let Some(wd) = driver.cfg.monitor {
        // Re-route the monitor at the swapped sinks.
        driver.enable_monitoring(wd);
    }
    let medium = lock(&entry.storage)
        .clone_box()
        .ok_or_else(|| "job storage medium is not shareable".to_string())?;
    driver.enable_checkpointing(
        medium,
        inner.cfg.keep_checkpoints,
        CheckpointPolicy::never(),
    );
    if resuming {
        match driver.resume_from_checkpoint() {
            // No generation on disk (cancelled before the first slice):
            // a fresh run from step 0 is the correct continuation.
            Ok(_) => {}
            Err(e) => return Err(format!("resume failed: {e:?}")),
        }
    }
    Ok(driver)
}

/// One budgeted slice plus its bookkeeping (records, checkpoint requests,
/// latency metrics, stream wake-ups).
fn run_slice(
    inner: &Arc<ServerInner>,
    entry: &Arc<JobEntry>,
    driver: &mut QuenchDriver,
) -> Result<RunOutcome, String> {
    let slice = entry.slices.fetch_add(1, Ordering::Relaxed);
    // Refine the task-level context with this slice's index: spans
    // recorded below (including on pool workers) and journal events from
    // the driver's recovery/checkpoint paths attribute to (job, slice).
    let _ctx = landau_obs::push_trace_ctx(Some(
        TraceCtx::new(entry.id.0, entry.tenant.clone()).at_slice(slice),
    ));
    inner
        .journal
        .publish(Event::slice_start(entry.id.0, &entry.tenant, slice));
    let t0 = Instant::now();
    let outcome = {
        let _sp = landau_obs::span(landau_obs::names::SERVE_SLICE);
        driver.run_budgeted(Some(entry.spec.slice_steps.max(1)))
    };
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    inner.journal.publish(Event::slice_end(
        entry.id.0,
        &entry.tenant,
        slice,
        driver.completed_steps(),
        ms,
    ));
    {
        let mut ema = lock(&inner.slice_ms_ema);
        *ema = if *ema == 0.0 {
            ms
        } else {
            0.875 * *ema + 0.125 * ms
        };
    }
    inner.metrics.add("serve.slices", 1);
    inner.metrics.observe("serve.slice_ms", ms.ceil() as u64);
    if entry.ckpt_requested.swap(false, Ordering::AcqRel) {
        let _ = driver.checkpoint_now();
        inner.metrics.add("serve.checkpoints_requested", 1);
    }
    {
        let mut st = lock(&entry.state);
        st.status = JobStatus::Running;
        st.completed_steps = driver.completed_steps();
        if st.first_record_at.is_none() && !entry.series.snapshot().is_empty() {
            let now = Instant::now();
            st.first_record_at = Some(now);
            inner.metrics.observe(
                "serve.submit_to_first_record_ms",
                ((now - st.submitted_at).as_secs_f64() * 1e3).ceil() as u64,
            );
        }
    }
    entry.notify.notify_waiters();
    outcome.map_err(|e| e.to_string())
}

/// Terminal transition: status, wall-clock bookkeeping, counters, wake.
fn finish(inner: &Arc<ServerInner>, entry: &Arc<JobEntry>, status: JobStatus) {
    let (counter, kind) = match &status {
        JobStatus::Completed => ("serve.completed", Some(EventKind::JobCompleted)),
        JobStatus::Cancelled => ("serve.cancelled", Some(EventKind::JobCancelled)),
        JobStatus::Failed(_) => ("serve.failed", Some(EventKind::JobFailed)),
        _ => ("serve.unexpected_finish", None),
    };
    if let Some(kind) = kind {
        let steps = lock(&entry.state).completed_steps;
        inner
            .journal
            .publish(Event::job_terminal(kind, entry.id.0, &entry.tenant, steps));
    }
    {
        let mut st = lock(&entry.state);
        let now = Instant::now();
        if status == JobStatus::Completed {
            inner.metrics.observe(
                "serve.job_e2e_ms",
                ((now - st.submitted_at).as_secs_f64() * 1e3).ceil() as u64,
            );
        }
        st.status = status;
        st.finished_at = Some(now);
    }
    inner.metrics.add(counter, 1);
    entry.notify.notify_waiters();
}

fn observe_ms(metrics: &MetricRegistry, name: &str, since: Instant) {
    metrics.observe(name, (since.elapsed().as_secs_f64() * 1e3).ceil() as u64);
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("status", &self.status())
            .finish()
    }
}

/// Client-side handle to one job.
#[derive(Clone)]
pub struct JobHandle {
    server: QuenchServer,
    /// The job's id.
    pub id: JobId,
}

impl JobHandle {
    fn entry(&self) -> Arc<JobEntry> {
        self.server
            .entry(self.id)
            .expect("job exists in this server")
    }

    /// Current lifecycle state.
    pub fn status(&self) -> JobStatus {
        lock(&self.entry().state).status.clone()
    }

    /// Driver steps completed so far (across resumes).
    pub fn completed_steps(&self) -> u64 {
        lock(&self.entry().state).completed_steps
    }

    /// Client-visible latencies in milliseconds:
    /// `(submit_to_first_record, submit_to_terminal)`. Each is `None`
    /// until the corresponding event has happened. The loadtest computes
    /// its p50/p99 from these per-job samples.
    pub fn latency_ms(&self) -> (Option<f64>, Option<f64>) {
        let entry = self.entry();
        let st = lock(&entry.state);
        let ms = |i: Instant| (i - st.submitted_at).as_secs_f64() * 1e3;
        (st.first_record_at.map(ms), st.finished_at.map(ms))
    }

    /// Request cancellation. Takes effect at the next slice boundary,
    /// where the job task cuts a checkpoint before parking — so a
    /// cancelled job is always resumable from exactly where it stopped.
    pub fn cancel(&self) {
        let entry = self.entry();
        entry.cancel.store(true, Ordering::Release);
        entry.notify.notify_waiters();
    }

    /// Request a durable checkpoint at the next slice boundary (without
    /// stopping the job).
    pub fn request_checkpoint(&self) {
        self.entry().ckpt_requested.store(true, Ordering::Release);
    }

    /// The job's timeseries so far, as `landau-obs-timeseries/1` JSON.
    pub fn series_json(&self) -> String {
        self.entry().series.snapshot().to_json_text()
    }

    /// An incremental stream over the job's `landau-obs-timeseries/1`
    /// records, starting at record 0.
    pub fn stream(&self) -> RecordStream {
        RecordStream {
            entry: self.entry(),
            cursor: 0,
        }
    }

    /// Wait until the job reaches a terminal state and return it.
    pub async fn wait(&self) -> JobStatus {
        let entry = self.entry();
        loop {
            let notified = entry.notify.notified();
            let status = lock(&entry.state).status.clone();
            if status.is_terminal() {
                return status;
            }
            notified.await;
        }
    }
}

/// Async iterator over a job's records, in step order, as they are
/// produced. Yields `None` once the job is terminal and every record has
/// been delivered.
pub struct RecordStream {
    entry: Arc<JobEntry>,
    cursor: usize,
}

impl RecordStream {
    /// Records delivered so far.
    pub fn delivered(&self) -> usize {
        self.cursor
    }

    fn take_next(&mut self) -> Option<Record> {
        let snap = self.entry.series.snapshot();
        if self.cursor < snap.len() {
            let rec = snap.records()[self.cursor].clone();
            self.cursor += 1;
            return Some(rec);
        }
        None
    }

    /// The next record, or `None` when the job is finished and fully
    /// drained.
    pub async fn next(&mut self) -> Option<Record> {
        loop {
            let notified = self.entry.notify.notified();
            if let Some(rec) = self.take_next() {
                return Some(rec);
            }
            if lock(&self.entry.state).status.is_terminal() {
                // Records published between the snapshot above and the
                // terminal transition must still be delivered.
                return self.take_next();
            }
            notified.await;
        }
    }
}
