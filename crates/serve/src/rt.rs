//! A minimal work-stealing async runtime on `std` alone.
//!
//! The workspace is hermetic (no external crates), so the service layer
//! carries its own executor instead of tokio. It is deliberately small:
//!
//! - **Tasks** are `Pin<Box<dyn Future<Output = ()> + Send>>` wrapped in
//!   an [`Arc`]; waking re-enqueues the task through [`std::task::Wake`],
//!   with a `queued` flag so concurrent wakes collapse into one enqueue.
//! - **Workers** each own a local deque. A task woken *from* a worker
//!   lands at the front of that worker's deque (run-next, cache-warm);
//!   wakes from foreign threads go to the shared injector. An idle worker
//!   drains its own deque, then the injector, then **steals from the back
//!   of sibling deques** — the classic work-stealing shape, which is what
//!   keeps one tenant's long slice from pinning every queued control
//!   future behind it.
//! - **`block_on`** drives a future on the calling thread with a
//!   condvar-parked waker, so tests and binaries need no worker just to
//!   wait.
//!
//! Run slices executed inside tasks may block their worker for the slice
//! duration; the inner data parallelism still goes through the persistent
//! `landau-par` pool. The executor only multiplexes *jobs*, the pool
//! multiplexes *elements* — see `DESIGN.md` §16.

use landau_obs::TraceCtx;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// Lock helper that survives a poisoned mutex (a panicking task must not
/// wedge the whole executor).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One spawned task: the future plus its re-enqueue bookkeeping.
struct Task {
    future: Mutex<Option<BoxFuture>>,
    /// Collapses concurrent wakes: only the transition false→true enqueues.
    queued: AtomicBool,
    exec: Arc<ExecState>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.exec.clone().enqueue(self);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.exec.clone().enqueue(self.clone());
    }
}

/// Shared executor state: injector + per-worker deques + sleep/wake.
struct ExecState {
    injector: Mutex<VecDeque<Arc<Task>>>,
    locals: Vec<Mutex<VecDeque<Arc<Task>>>>,
    /// Pairs with `injector` for sleeping workers.
    idle: Condvar,
    shutdown: AtomicBool,
    /// Tasks spawned and not yet finished (drain barrier).
    live: AtomicUsize,
    /// Steal events observed (exported as `serve.rt.steals`).
    steals: AtomicUsize,
}

thread_local! {
    /// Worker index when the current thread is an executor worker.
    static WORKER_ID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

impl ExecState {
    fn enqueue(self: Arc<Self>, task: Arc<Task>) {
        if task.queued.swap(true, Ordering::AcqRel) {
            return; // already queued; the pending poll will see the wake
        }
        let local = WORKER_ID.with(|w| w.get());
        match local {
            // Wakes from inside a worker go run-next on that worker.
            Some(id) if id < self.locals.len() => lock(&self.locals[id]).push_front(task),
            _ => lock(&self.injector).push_back(task),
        }
        self.idle.notify_one();
    }

    /// Next task for worker `id`: local front, injector front, then steal
    /// from the back of sibling deques (lowest index first, so the victim
    /// order is deterministic).
    fn next_task(&self, id: usize) -> Option<Arc<Task>> {
        if let Some(t) = lock(&self.locals[id]).pop_front() {
            return Some(t);
        }
        if let Some(t) = lock(&self.injector).pop_front() {
            return Some(t);
        }
        for (victim, deque) in self.locals.iter().enumerate() {
            if victim == id {
                continue;
            }
            if let Some(t) = lock(deque).pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }
}

fn worker_loop(exec: Arc<ExecState>, id: usize) {
    WORKER_ID.with(|w| w.set(Some(id)));
    loop {
        let task = match exec.next_task(id) {
            Some(t) => t,
            None => {
                if exec.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Sleep on the injector; the timeout bounds how stale a
                // sibling-deque steal opportunity can go unnoticed.
                let guard = lock(&exec.injector);
                let _ = exec.idle.wait_timeout(guard, Duration::from_micros(500));
                continue;
            }
        };
        // Clear `queued` *before* polling: a wake that lands mid-poll must
        // re-enqueue, or the task would sleep through its own readiness.
        task.queued.store(false, Ordering::Release);
        let waker = Waker::from(task.clone());
        let mut cx = Context::from_waker(&waker);
        let mut slot = lock(&task.future);
        if let Some(fut) = slot.as_mut() {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    *slot = None;
                    exec.live.fetch_sub(1, Ordering::AcqRel);
                    exec.idle.notify_all();
                }
                Poll::Pending => {}
            }
        }
    }
}

/// The work-stealing executor: `workers` OS threads driving spawned tasks.
pub struct Runtime {
    exec: Arc<ExecState>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Start a runtime with `workers >= 1` worker threads.
    pub fn new(workers: usize) -> Runtime {
        let workers = workers.max(1);
        let exec = Arc::new(ExecState {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Condvar::new(),
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
        });
        let threads = (0..workers)
            .map(|i| {
                let exec = exec.clone();
                std::thread::Builder::new()
                    .name(format!("landau-serve-{i}"))
                    .spawn(move || worker_loop(exec, i))
                    .expect("spawn landau-serve worker")
            })
            .collect();
        Runtime { exec, threads }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Cross-worker steal events so far (how often the balancing path ran).
    pub fn steal_count(&self) -> usize {
        self.exec.steals.load(Ordering::Relaxed)
    }

    /// Spawn a future onto the executor, returning a handle that resolves
    /// to its output.
    pub fn spawn<T, F>(&self, fut: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        let state = Arc::new(Mutex::new(JoinState::<T> {
            result: None,
            waker: None,
        }));
        let st = state.clone();
        let wrapped = async move {
            let out = fut.await;
            let waker = {
                let mut s = lock(&st);
                s.result = Some(out);
                s.waker.take()
            };
            if let Some(w) = waker {
                w.wake();
            }
        };
        self.exec.live.fetch_add(1, Ordering::AcqRel);
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(wrapped))),
            queued: AtomicBool::new(false),
            exec: self.exec.clone(),
        });
        self.exec.clone().enqueue(task);
        JoinHandle { state }
    }

    /// Spawn a future that carries a job's [`TraceCtx`]: the context is
    /// installed around **every poll**, so it follows the task across
    /// worker threads and steals, and any spans (or journal events) the
    /// poll records attribute to the job no matter which worker ran it.
    pub fn spawn_traced<T, F>(&self, ctx: TraceCtx, fut: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        self.spawn(Traced {
            ctx,
            inner: Box::pin(fut),
        })
    }

    /// Block the calling thread until every spawned task has finished.
    /// (The service uses this to drain in-flight jobs at shutdown.)
    pub fn wait_idle(&self) {
        while self.exec.live.load(Ordering::Acquire) > 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.exec.shutdown.store(true, Ordering::Release);
        self.exec.idle.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Future wrapper that installs a [`TraceCtx`] for the duration of each
/// poll (see [`Runtime::spawn_traced`]). Boxing the inner future keeps
/// the wrapper `Unpin` without unsafe pin projection.
struct Traced<F> {
    ctx: TraceCtx,
    inner: Pin<Box<F>>,
}

impl<F: Future> Future for Traced<F> {
    type Output = F::Output;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<F::Output> {
        let this = self.get_mut();
        let _ctx = landau_obs::push_trace_ctx(Some(this.ctx.clone()));
        this.inner.as_mut().poll(cx)
    }
}

/// Result slot shared between a spawned task and its [`JoinHandle`].
struct JoinState<T> {
    result: Option<T>,
    waker: Option<Waker>,
}

/// Awaitable handle to a spawned task's output.
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// True once the task has produced its output.
    pub fn is_finished(&self) -> bool {
        lock(&self.state).result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = lock(&self.state);
        if let Some(out) = s.result.take() {
            return Poll::Ready(out);
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Condvar-parked waker for [`block_on`].
struct Parker {
    woken: Mutex<bool>,
    cv: Condvar,
}

impl Wake for Parker {
    fn wake(self: Arc<Self>) {
        *lock(&self.woken) = true;
        self.cv.notify_one();
    }
}

/// Drive `fut` to completion on the calling thread.
pub fn block_on<T, F: Future<Output = T>>(fut: F) -> T {
    let parker = Arc::new(Parker {
        woken: Mutex::new(false),
        cv: Condvar::new(),
    });
    let waker = Waker::from(parker.clone());
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        if let Poll::Ready(out) = fut.as_mut().poll(&mut cx) {
            return out;
        }
        let mut woken = lock(&parker.woken);
        while !*woken {
            woken = parker
                .cv
                .wait_timeout(woken, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        *woken = false;
    }
}

/// Cooperative yield: reschedules the current task once, letting siblings
/// (and stealers) run. Used between job slices.
pub fn yield_now() -> YieldNow {
    YieldNow { polled: false }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawn_and_join_many() {
        let rt = Runtime::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..256u64)
            .map(|i| {
                let c = counter.clone();
                rt.spawn(async move {
                    yield_now().await;
                    c.fetch_add(i, Ordering::Relaxed);
                    i * 2
                })
            })
            .collect();
        let mut total = 0;
        for h in handles {
            total += block_on(h);
        }
        assert_eq!(total, (0..256u64).map(|i| i * 2).sum());
        assert_eq!(counter.load(Ordering::Relaxed), (0..256u64).sum());
    }

    #[test]
    fn block_on_plain_future() {
        assert_eq!(block_on(async { 7 + 35 }), 42);
    }

    #[test]
    fn traced_tasks_carry_their_context_across_polls() {
        let rt = Runtime::new(2);
        let handles: Vec<_> = (0..16u64)
            .map(|job| {
                let ctx = TraceCtx::new(job, Arc::from("acme"));
                rt.spawn_traced(ctx, async move {
                    let before = landau_obs::trace_ctx().map(|c| c.job);
                    // Re-polls may land on a different worker; the
                    // context must follow the task, not the thread.
                    yield_now().await;
                    yield_now().await;
                    let after = landau_obs::trace_ctx().map(|c| c.job);
                    (before, after)
                })
            })
            .collect();
        for (job, h) in (0..16u64).zip(handles) {
            assert_eq!(block_on(h), (Some(job), Some(job)));
        }
    }

    #[test]
    fn blocked_worker_does_not_wedge_the_runtime() {
        // One task holds a worker hostage; the other workers must still
        // drain the queue (by stealing or injector pulls).
        let rt = Runtime::new(3);
        let gate = Arc::new(AtomicBool::new(false));
        let g = gate.clone();
        let blocker = rt.spawn(async move {
            while !g.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        let others: Vec<_> = (0..64).map(|i| rt.spawn(async move { i })).collect();
        let sum: usize = others.into_iter().map(block_on).sum();
        assert_eq!(sum, (0..64).sum());
        gate.store(true, Ordering::Release);
        block_on(blocker);
    }

    #[test]
    fn wait_idle_sees_all_tasks_finish() {
        let rt = Runtime::new(2);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..32 {
            let d = done.clone();
            rt.spawn(async move {
                yield_now().await;
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 32);
    }
}
