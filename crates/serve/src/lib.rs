//! Simulation-as-a-service over the thermal-quench driver.
//!
//! `landau-serve` turns the batch `QuenchDriver` (paper §IV-C) into an
//! async multi-tenant job service:
//!
//! * **submit** a `QuenchConfig`-family scenario and get a [`JobId`] /
//!   [`JobHandle`] back immediately;
//! * **stream** `landau-obs-timeseries/1` records as slices produce them
//!   ([`RecordStream`]);
//! * **cancel** a job (a checkpoint is cut at the slice boundary),
//!   **checkpoint** it on demand, and **resume** it later — the resumed
//!   stream is byte-identical to an uninterrupted run;
//! * **fairness**: slices are granted per tenant by start-time fair
//!   queueing with configurable quotas ([`FairScheduler`]), so one noisy
//!   tenant cannot starve the rest;
//! * **backpressure**: bounded per-tenant and server-wide queues; an
//!   over-limit submit is rejected immediately with a `retry_after_ms`
//!   hint ([`Rejected`]) instead of buffering without bound.
//!
//! There is no external async runtime in this workspace (the build is
//! hermetic), so [`rt`] provides a minimal work-stealing executor built
//! on `std::task::Wake`: per-worker deques, a global injector, sibling
//! back-stealing, condvar parking. Job tasks are cooperative at slice
//! granularity — each scheduler slice runs `run_budgeted(slice_steps)`
//! on an executor worker while inner velocity-space sweeps fan out
//! through the persistent `landau-par` pool.
//!
//! Observability: the server publishes `serve.*` counters and latency
//! histograms (submission, queue wait, slice, submit-to-first-record,
//! end-to-end) through `landau-obs`, and wraps driver slices in
//! `serve_slice` / `serve_build` spans. The `loadtest` bin in
//! `landau-bench` drives thousands of concurrent small quenches through
//! this API and gates the latency distribution in CI.

pub mod rt;
pub mod sync;

mod job;
mod scheduler;
mod server;

pub use job::{JobId, JobSpec, JobStatus, RejectReason, Rejected};
pub use scheduler::{Acquire, FairScheduler, SlicePermit};
pub use server::{JobHandle, QuenchServer, RecordStream, ServeConfig};
