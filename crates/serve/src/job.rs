//! Job identity, specification and lifecycle state.

use landau_quench::QuenchConfig;
use std::time::Instant;

/// Opaque job identifier, unique within one server.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What a tenant submits: a `QuenchConfig`-family scenario plus the slice
/// granularity the scheduler preempts it at.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Human-readable label (lands in logs and the grant trace).
    pub name: String,
    /// The quench scenario to run.
    pub cfg: QuenchConfig,
    /// Driver steps per scheduler slice. Smaller slices mean fairer
    /// interleaving and fresher checkpoints at the cost of more scheduler
    /// round-trips.
    pub slice_steps: u64,
}

impl JobSpec {
    /// A spec with the default slice granularity.
    pub fn new(name: impl Into<String>, cfg: QuenchConfig) -> JobSpec {
        JobSpec {
            name: name.into(),
            cfg,
            slice_steps: 2,
        }
    }
}

/// Lifecycle of a submitted job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted; no slice has run yet.
    Queued,
    /// At least one slice has run and the job is not finished.
    Running,
    /// All phases ran to completion.
    Completed,
    /// The solver exhausted its recovery budget (message attached).
    Failed(String),
    /// Cancelled by the tenant; a checkpoint was cut at the last slice
    /// boundary, so [`crate::QuenchServer::resume`] can continue it.
    Cancelled,
}

impl JobStatus {
    /// True for states no further slice will change.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Completed | JobStatus::Failed(_) | JobStatus::Cancelled
        )
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rejected {
    /// Which bound was hit.
    pub reason: RejectReason,
    /// Client backoff hint in milliseconds (the server's estimate of when
    /// a slot frees up, derived from the recent slice-duration average).
    pub retry_after_ms: u64,
}

/// The admission bound that rejected a submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's own queued+running quota is exhausted.
    TenantQueueFull,
    /// The server-wide in-flight bound is exhausted.
    ServerQueueFull,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let which = match self.reason {
            RejectReason::TenantQueueFull => "tenant queue full",
            RejectReason::ServerQueueFull => "server queue full",
        };
        write!(f, "{which}; retry after {} ms", self.retry_after_ms)
    }
}

impl std::error::Error for Rejected {}

/// Mutable per-job state behind the entry lock.
pub(crate) struct JobState {
    pub status: JobStatus,
    pub completed_steps: u64,
    pub submitted_at: Instant,
    pub first_record_at: Option<Instant>,
    pub finished_at: Option<Instant>,
}
