//! Async notification primitive for the service layer.
//!
//! [`Notify`] is the one synchronization shape the server needs beyond
//! mutexes: "wake every future currently waiting for a state change".
//! Record streams wait on it between slices, and `wait()` futures wait on
//! it for terminal status. It is level-triggered via a generation counter:
//! a `notified()` future created *before* a `notify_waiters` call resolves
//! on its next poll, so a wake between "check state" and "await" is never
//! lost.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct NotifyState {
    generation: u64,
    waiters: Vec<Waker>,
}

/// Broadcast wake-up: every [`Notified`] future outstanding at
/// [`Notify::notify_waiters`] time resolves.
#[derive(Clone)]
pub struct Notify {
    state: Arc<Mutex<NotifyState>>,
}

impl Default for Notify {
    fn default() -> Self {
        Notify::new()
    }
}

impl Notify {
    /// A fresh notifier.
    pub fn new() -> Notify {
        Notify {
            state: Arc::new(Mutex::new(NotifyState {
                generation: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// A future that resolves at the next `notify_waiters` call (or
    /// immediately, if one happened after this future was created).
    pub fn notified(&self) -> Notified {
        let born = lock(&self.state).generation;
        Notified {
            state: self.state.clone(),
            born,
        }
    }

    /// Wake every outstanding waiter.
    pub fn notify_waiters(&self) {
        let waiters = {
            let mut s = lock(&self.state);
            s.generation = s.generation.wrapping_add(1);
            std::mem::take(&mut s.waiters)
        };
        for w in waiters {
            w.wake();
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    state: Arc<Mutex<NotifyState>>,
    born: u64,
}

impl Future for Notified {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = lock(&self.state);
        if s.generation != self.born {
            return Poll::Ready(());
        }
        s.waiters.push(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::{block_on, Runtime};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn notify_wakes_all_waiters() {
        let rt = Runtime::new(2);
        let n = Notify::new();
        let hits = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let n = n.clone();
                let h = hits.clone();
                rt.spawn(async move {
                    n.notified().await;
                    h.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        // Give the waiters time to register, then broadcast.
        std::thread::sleep(std::time::Duration::from_millis(20));
        n.notify_waiters();
        for h in handles {
            block_on(h);
        }
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn pre_created_notified_never_misses_a_wake() {
        let n = Notify::new();
        let fut = n.notified();
        n.notify_waiters(); // fires before the first poll
        block_on(fut); // must still resolve
    }
}
