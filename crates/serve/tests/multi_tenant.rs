//! End-to-end service tests: submission, streaming, fairness, cancel /
//! checkpoint / resume, and backpressure.

use landau_core::ckpt::CheckpointStore;
use landau_obs::MetricRegistry;
use landau_quench::QuenchConfig;
use landau_serve::rt::block_on;
use landau_serve::{JobSpec, JobStatus, QuenchServer, RejectReason, ServeConfig};
use std::sync::Arc;

/// The smallest quench scenario that still exercises both phases: a
/// coarse velocity mesh and a short pulse, ~150 ms per step on one core.
fn tiny_cfg(quench_steps: usize) -> QuenchConfig {
    QuenchConfig {
        domain: 2.0,
        cells_per_vt: 0.3,
        k_outer: 1.0,
        ion_mass: 16.0,
        t_cold: 0.15,
        dt: 0.1,
        max_equil_steps: 2,
        quench_steps,
        pulse_duration: 3.0,
        mass_factor: 3.0,
        ..QuenchConfig::default()
    }
}

fn small_server() -> QuenchServer {
    QuenchServer::with_registry(
        ServeConfig {
            workers: 2,
            max_active_slices: 2,
            ..ServeConfig::default()
        },
        Arc::new(MetricRegistry::new()),
    )
}

#[test]
fn submitted_jobs_complete_and_stream_all_records() {
    let server = small_server();
    let mut handles = Vec::new();
    for tenant in ["alice", "bob"] {
        for i in 0..2 {
            let spec = JobSpec::new(format!("{tenant}-{i}"), tiny_cfg(4));
            handles.push(server.submit(tenant, spec).expect("admitted"));
        }
    }
    for h in &handles {
        assert_eq!(block_on(h.wait()), JobStatus::Completed);
    }
    // Streams deliver every record the driver published, in step order.
    for h in &handles {
        let mut stream = h.stream();
        let mut last_step = None;
        while let Some(rec) = block_on(stream.next()) {
            if let Some(prev) = last_step {
                assert!(rec.step > prev, "records out of order");
            }
            last_step = Some(rec.step);
        }
        assert!(stream.delivered() > 0, "job produced no records");
        let json = h.series_json();
        assert!(json.contains("landau-obs-timeseries/1"));
    }
}

#[test]
fn cancel_mid_slice_leaves_a_loadable_checkpoint() {
    let server = small_server();
    let spec = JobSpec::new("long", tiny_cfg(8));
    let h = server.submit("alice", spec).expect("admitted");
    // Wait for the first record so at least one slice has run, then
    // cancel: the job task cuts a checkpoint at the slice boundary.
    let mut stream = h.stream();
    let first = block_on(stream.next());
    assert!(first.is_some(), "job never produced a record");
    h.cancel();
    assert_eq!(block_on(h.wait()), JobStatus::Cancelled);
    assert!(h.completed_steps() > 0);
    // The checkpoint is durable and loadable through a second handle onto
    // the job's storage medium — exactly what resume() will do.
    let medium = server.job_storage(h.id).expect("storage is shareable");
    let mut store = CheckpointStore::new(medium, 2);
    let loaded = store.load_latest().expect("checkpoint medium readable");
    assert!(loaded.is_some(), "cancel left no loadable checkpoint");
}

#[test]
fn resume_after_cancel_streams_byte_identical_timeseries() {
    // Reference: the same scenario run uninterrupted.
    let server = small_server();
    let cfg = tiny_cfg(8);
    let reference = {
        let h = server
            .submit("ref", JobSpec::new("uninterrupted", cfg.clone()))
            .expect("admitted");
        assert_eq!(block_on(h.wait()), JobStatus::Completed);
        h.series_json()
    };

    // Interrupted run: cancel mid-flight (kill), then resume from the
    // checkpoint and run to completion.
    let h = server
        .submit("alice", JobSpec::new("interrupted", cfg))
        .expect("admitted");
    let mut stream = h.stream();
    assert!(block_on(stream.next()).is_some());
    h.cancel();
    assert_eq!(block_on(h.wait()), JobStatus::Cancelled);
    let steps_at_cancel = h.completed_steps();

    let h2 = server.resume(h.id).expect("resumable");
    assert_eq!(block_on(h2.wait()), JobStatus::Completed);
    assert!(h2.completed_steps() > steps_at_cancel);

    // The export after kill+resume is byte-identical to the
    // uninterrupted run: restore repushes the pre-kill records bitwise
    // and the physics replays deterministically from the slice boundary.
    assert_eq!(h2.series_json(), reference);

    // The live stream kept its cursor across the kill: draining it now
    // yields the remaining records with no duplicates and no gaps.
    let mut last = None;
    while let Some(rec) = block_on(stream.next()) {
        if let Some(prev) = last {
            assert!(rec.step > prev);
        }
        last = Some(rec.step);
    }
}

#[test]
fn quota_starvation_is_bounded() {
    // One slice lane, a noisy tenant flooding 6 jobs before a meek
    // tenant's single job arrives: fair queueing must grant the meek
    // tenant a slice almost immediately, not after the flood drains.
    let server = QuenchServer::with_registry(
        ServeConfig {
            workers: 1,
            max_active_slices: 1,
            ..ServeConfig::default()
        },
        Arc::new(MetricRegistry::new()),
    );
    server.set_tenant_quota("noisy", 1);
    server.set_tenant_quota("meek", 1);
    let mut handles = Vec::new();
    for i in 0..6 {
        let spec = JobSpec::new(format!("noisy-{i}"), tiny_cfg(3));
        handles.push(server.submit("noisy", spec).expect("admitted"));
    }
    let meek = server
        .submit("meek", JobSpec::new("meek-0", tiny_cfg(3)))
        .expect("admitted");
    handles.push(meek.clone());
    for h in &handles {
        assert_eq!(block_on(h.wait()), JobStatus::Completed);
    }
    // Starvation bound: with equal quotas, once the meek job is queued,
    // consecutive meek grants are separated by at most 2 noisy grants
    // (ceil(q_noisy/q_meek) + 1). Find the meek grants in the log.
    let log = server.grant_log();
    let meek_positions: Vec<usize> = log
        .iter()
        .enumerate()
        .filter(|(_, (t, _))| t == "meek")
        .map(|(i, _)| i)
        .collect();
    assert!(!meek_positions.is_empty(), "meek tenant never granted");
    for pair in meek_positions.windows(2) {
        assert!(
            pair[1] - pair[0] <= 3,
            "meek starved for {} grants: log {log:?}",
            pair[1] - pair[0]
        );
    }
}

#[test]
fn over_limit_submissions_reject_with_retry_after() {
    let server = QuenchServer::with_registry(
        ServeConfig {
            workers: 1,
            max_active_slices: 1,
            max_in_flight_per_tenant: 2,
            max_in_flight_total: 3,
            min_retry_after_ms: 25,
            ..ServeConfig::default()
        },
        Arc::new(MetricRegistry::new()),
    );
    let mut handles = Vec::new();
    for i in 0..2 {
        let spec = JobSpec::new(format!("a-{i}"), tiny_cfg(10));
        handles.push(server.submit("alice", spec).expect("admitted"));
    }
    // Tenant bound: alice's third concurrent job bounces.
    let rej = server
        .submit("alice", JobSpec::new("a-2", tiny_cfg(10)))
        .expect_err("tenant over limit");
    assert_eq!(rej.reason, RejectReason::TenantQueueFull);
    assert!(rej.retry_after_ms >= 25, "hint {}", rej.retry_after_ms);
    // Server bound: one more admission fills the global limit, then any
    // tenant bounces with the server-wide reason.
    handles.push(
        server
            .submit("bob", JobSpec::new("b-0", tiny_cfg(10)))
            .expect("admitted"),
    );
    let rej = server
        .submit("carol", JobSpec::new("c-0", tiny_cfg(10)))
        .expect_err("server full");
    assert_eq!(rej.reason, RejectReason::ServerQueueFull);
    // Backpressure is advisory, not fatal: once jobs finish, the same
    // submission is admitted.
    for h in &handles {
        assert!(block_on(h.wait()).is_terminal());
    }
    server
        .submit("carol", JobSpec::new("c-0", tiny_cfg(4)))
        .expect("admitted after drain");
    server.drain();
}
