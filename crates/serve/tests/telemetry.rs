//! Live-telemetry integration tests: per-job span stitching across
//! kill/resume, the OpenMetrics scrape under a warm registry, and the
//! SLO watchdog's Record/Fail contract.
//!
//! Spans and the journal accumulate into process-global state, so every
//! test serializes on [`lock`] and resets what it uses.

use landau_obs::{AlertMode, EventKind, Journal, MetricRegistry};
use landau_quench::QuenchConfig;
use landau_serve::rt::block_on;
use landau_serve::{JobSpec, JobStatus, QuenchServer, ServeConfig};
use std::sync::{Arc, Mutex, MutexGuard};

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The smallest two-phase quench that still runs real physics.
fn tiny_cfg(quench_steps: usize) -> QuenchConfig {
    QuenchConfig {
        domain: 2.0,
        cells_per_vt: 0.3,
        k_outer: 1.0,
        ion_mass: 16.0,
        t_cold: 0.15,
        dt: 0.1,
        max_equil_steps: 1,
        quench_steps,
        pulse_duration: 3.0,
        mass_factor: 3.0,
        ..QuenchConfig::default()
    }
}

fn small_server(mode: AlertMode) -> (QuenchServer, Arc<MetricRegistry>) {
    let registry = Arc::new(MetricRegistry::new());
    let server = QuenchServer::with_registry(
        ServeConfig {
            workers: 2,
            max_active_slices: 2,
            alert_mode: mode,
            ..ServeConfig::default()
        },
        registry.clone(),
    );
    (server, registry)
}

#[test]
fn killed_and_resumed_job_forms_one_rooted_span_tree() {
    let _l = lock();
    landau_obs::set_recording(true);
    landau_obs::reset_spans();
    let (server, _reg) = small_server(AlertMode::Record);

    // One-step slices so the kill lands between slices and the resumed
    // job reruns several more of them.
    let spec = JobSpec {
        slice_steps: 1,
        ..JobSpec::new("stitch-probe", tiny_cfg(4))
    };
    let h = server.submit("acme", spec).expect("admitted");
    let mut stream = h.stream();
    assert!(block_on(stream.next()).is_some(), "first record arrived");
    h.cancel();
    assert_eq!(block_on(h.wait()), JobStatus::Cancelled);
    if !landau_obs::recording_compiled() {
        return;
    }
    let slices_before_kill = landau_obs::job_spans_snapshot(h.id.0).count_of("serve_slice");
    assert!(slices_before_kill >= 1, "the killed job ran a slice");

    let h2 = server.resume(h.id).expect("resumable");
    assert_eq!(block_on(h2.wait()), JobStatus::Completed);

    // All spans — pre-kill and post-resume, across executor workers and
    // pool threads — sit in the one bucket keyed by the stable job id.
    let jobs = landau_obs::traced_jobs();
    assert_eq!(jobs, vec![h.id.0], "exactly one traced job");
    let snap = landau_obs::job_spans_snapshot(h.id.0);
    let slices = snap.count_of("serve_slice");
    assert!(
        slices > slices_before_kill,
        "post-resume slices joined the same tree ({slices} vs {slices_before_kill})"
    );

    // The exported Chrome trace is a single rooted tree: one `job N`
    // root whose interval contains every other event.
    let trace = landau_obs::job_chrome_trace(h.id.0, &snap);
    let events = trace
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("trace has events");
    assert!(events.len() > 1, "trace is non-trivial");
    let root = &events[0];
    assert_eq!(
        root.get("name").and_then(|n| n.as_str()),
        Some(format!("job {}", h.id.0).as_str())
    );
    let root_ts = root.get("ts").and_then(|v| v.as_f64()).expect("root ts");
    let root_end = root_ts + root.get("dur").and_then(|v| v.as_f64()).expect("root dur");
    for ev in &events[1..] {
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("event ts");
        let dur = ev.get("dur").and_then(|v| v.as_f64()).unwrap_or(0.0);
        assert!(
            ts >= root_ts && ts + dur <= root_end,
            "event escapes the job root interval"
        );
    }
    landau_obs::reset_spans();
}

#[test]
fn scrape_under_load_is_valid_openmetrics_with_all_families() {
    let _l = lock();
    let (server, _reg) = small_server(AlertMode::Record);
    let h = server
        .submit("acme", JobSpec::new("scrape-job", tiny_cfg(2)))
        .expect("admitted");
    // Scrape while the job is in flight: the exposition must already be
    // well-formed and carry the alert and journal families.
    let live = server.metrics_scrape();
    landau_obs::openmetrics::validate(&live).expect("mid-flight scrape validates");
    assert_eq!(block_on(h.wait()), JobStatus::Completed);
    let done = server.metrics_scrape();
    landau_obs::openmetrics::validate(&done).expect("post-completion scrape validates");
    for family in [
        "serve_",
        "alert_evaluations_total",
        "obs_journal_published_total",
        "obs_journal_dropped_total",
    ] {
        assert!(done.contains(family), "scrape missing {family}");
    }
    assert!(done.ends_with("# EOF\n"), "exposition is EOF-terminated");
}

#[test]
fn journal_records_the_job_lifecycle_and_watchdog_stays_quiet() {
    let _l = lock();
    let journal = Journal::global();
    journal.drain();
    let (server, _reg) = small_server(AlertMode::Record);
    let h = server
        .submit("acme", JobSpec::new("lifecycle-job", tiny_cfg(2)))
        .expect("admitted");
    assert_eq!(block_on(h.wait()), JobStatus::Completed);
    let events = journal.drain();
    let kinds: Vec<EventKind> = events
        .iter()
        .filter(|e| e.job == h.id.0)
        .map(|e| e.kind)
        .collect();
    for want in [
        EventKind::JobSubmitted,
        EventKind::SliceStart,
        EventKind::SliceEnd,
        EventKind::JobCompleted,
    ] {
        assert!(kinds.contains(&want), "journal missing {want:?}");
    }
    // A healthy tiny run breaches nothing, so Record mode reports no
    // firings and the Fail-mode contract would not have tripped either.
    let firings = server.check_slos().expect("record mode never errors");
    assert!(firings.is_empty(), "unexpected SLO firings: {firings:?}");
}
