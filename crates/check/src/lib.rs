//! Workspace lint pass: textual source checks for the discipline the
//! virtual-GPU execution model depends on.
//!
//! Ten rules, all enforced by [`lint_source`] over comment- and
//! string-stripped source (so the patterns cannot match inside literals or
//! prose):
//!
//! * **U001** — every `unsafe` block or function must carry a `// SAFETY:`
//!   comment on the same line or within the few lines above it. Applies to
//!   the whole workspace.
//! * **T002** — kernel crates (`vgpu`, `core`, `sparse`, `fem`) must not
//!   spawn bare `std::thread`s in library code: all parallelism goes
//!   through `landau-par` (deterministic splits) or the virtual-GPU
//!   drivers. Test code (`#[cfg(test)]` modules, `tests/`, `benches/`) is
//!   exempt — contention tests legitimately spawn threads.
//! * **R003** — kernel crates must not accumulate floating-point values
//!   across vector lanes by `+=` into shared/scratch storage; cross-lane
//!   accumulation must go through a `Reducer` (the tree join is what keeps
//!   it deterministic). Heuristic: flag `+=` whose destination indexes a
//!   `scratch`/`shared`/`smem` buffer.
//! * **E004** — the resilient solve path ([`NO_PANIC_FILES`]: the
//!   integrator, recovery layer, batched advance and quench driver) must
//!   not call `.unwrap()` / `.expect(` in library code: every failure
//!   there is a typed `SolveError`/`RecoveryFailure`/`QuenchError`, and a
//!   panic would void the transactional-step guarantee. Test code is
//!   exempt.
//! * **E005** — public solver-path functions ([`STATS_FILES`]) that build
//!   a local stats struct (`Tally`, `StepStats`, `BatchStats`, …) must
//!   show some integration with the unified observability layer — a
//!   `landau_obs::` span, a `MetricRegistry` parameter, or the `span!`
//!   macro — somewhere in the function. Private stats siloes are how
//!   telemetry fragments back into per-module formats. Test code is
//!   exempt.
//! * **E006** — library crates ([`LIBRARY_CRATES`]) must not print to
//!   stdout/stderr (`println!` / `eprintln!`) outside test code: all
//!   telemetry goes through the observability layer (metrics, spans,
//!   timeseries), where it is structured, mergeable and redirectable.
//!   Binaries and benches (the presentation layer) print freely.
//! * **E007** — kernel crates must not call `Team::scratch(len)` with a
//!   hand-written length: the argument must visibly derive from the
//!   `TeamPolicy` or a registered budget closure (an identifier containing
//!   `budget`, `policy` or `scratch_len`). Hand-written lengths drift from
//!   the kernel registry's budget declaration and defeat the static
//!   verifier's capacity proof (see `verify`). Test code is exempt.
//! * **E008** — library crates must not write files directly
//!   (`std::fs::write` / `File::create`): all durable state goes through
//!   the checkpoint `Storage` trait, whose directory implementation owns
//!   the tmp-write → fsync → rename discipline. A raw write elsewhere can
//!   tear under a crash and silently corrupt a resume. Only the `Storage`
//!   implementations themselves ([`CKPT_STORAGE_FILES`]) and test code
//!   are exempt; binaries and benches write their reports freely.
//! * **E009** — async bodies in the service crates
//!   ([`ASYNC_HYGIENE_CRATES`]) must never block the executor thread:
//!   no `thread::sleep`, no `std::fs` I/O, and no `MutexGuard` binding
//!   held across an `.await`. The hand-rolled runtime has a handful of
//!   worker threads; one blocked task stalls every task queued behind
//!   it, and a guard held across a suspension point deadlocks as soon
//!   as the guard's owner parks while another worker resumes a task
//!   that wants the same lock. Sync helpers and test code are exempt.
//! * **E010** — journal events in library crates must be built through the
//!   typed `landau_obs::Event` constructors (`Event::slice_start(…)`,
//!   `Event::degrade(…)`, …), never as ad-hoc `Event { … }` struct
//!   literals: the constructors are what keep the `landau-obs-events/1`
//!   wire schema stable and the trace context attached. And a
//!   `.publish(…Event…)` call on a serve/library hot path must not
//!   allocate inside its argument (`format!`, `.to_string()`, `vec![`,
//!   …): the ring publish is designed to be a handful of atomics, and an
//!   allocating payload turns every traversal of the hot path into a
//!   malloc. Only the journal implementation itself
//!   ([`JOURNAL_IMPL_FILES`]) and test code are exempt.
//!
//! The `lint` binary walks every workspace crate and exits nonzero on any
//! finding; `ci.sh` runs it alongside rustfmt and clippy. The sibling
//! `verify-kernels` binary runs the [`verify`] analyzer over the kernel
//! registry and the seeded-defect [`corpus`].

pub mod corpus;
pub mod verify;

use std::fmt;
use std::path::{Path, PathBuf};

/// How far above an `unsafe` token a `// SAFETY:` comment may sit (in
/// lines) and still justify it.
pub const SAFETY_COMMENT_WINDOW: usize = 6;

/// Crates whose library code runs under the virtual-GPU execution model or
/// feeds it; thread hygiene (T002) and lane-accumulation discipline (R003)
/// apply to these.
pub const KERNEL_CRATES: &[&str] = &["landau-vgpu", "landau-core", "landau-sparse", "landau-fem"];

/// Files on the resilient solve path where library code must surface
/// failures as typed errors, never panic (`E004`). Paths are
/// workspace-relative with `/` separators.
pub const NO_PANIC_FILES: &[&str] = &[
    "crates/core/src/solver.rs",
    "crates/core/src/recover.rs",
    "crates/core/src/batch.rs",
    "crates/quench/src/driver.rs",
];

/// Files on the instrumented solve path where a public function that
/// allocates a local stats struct must also touch the shared
/// observability layer (`E005`). The solve-path files plus the kernel
/// entry points that produce `Tally`s.
pub const STATS_FILES: &[&str] = &[
    "crates/core/src/solver.rs",
    "crates/core/src/recover.rs",
    "crates/core/src/batch.rs",
    "crates/quench/src/driver.rs",
    "crates/core/src/kernels.rs",
];

/// Crates whose `src/` trees are libraries consumed by other crates;
/// direct stdout/stderr printing there bypasses the observability layer
/// (`E006`). The bench/check/testkit crates are presentation or tooling
/// layers and stay free to print.
pub const LIBRARY_CRATES: &[&str] = &[
    "landau-core",
    "landau-fem",
    "landau-sparse",
    "landau-quench",
    "landau-obs",
    "landau-par",
    "landau-vgpu",
    "landau-serve",
];

/// Crates whose library code runs on the hand-rolled cooperative
/// executor; async bodies there must never block the worker thread
/// (`E009`).
pub const ASYNC_HYGIENE_CRATES: &[&str] = &["landau-serve"];

/// Calls that park or busy the OS thread (`E009`): banned inside async
/// bodies, where the executor — not the kernel — owns scheduling.
const BLOCKING_TOKENS: &[&str] = &["thread::sleep(", "std::fs::"];

/// Struct-literal / constructor tokens that mark a stats allocation
/// (`E005`).
const STATS_TOKENS: &[&str] = &[
    "Tally::new(",
    "Tally {",
    "StepStats {",
    "BatchStats {",
    "VertexStats {",
    "RecoveryStats {",
    "KernelStats {",
];

/// Evidence that a function integrates with the unified observability
/// layer (`E005`): an explicit span, the span macro, or a registry in
/// the signature/body.
const OBS_EVIDENCE_TOKENS: &[&str] = &["MetricRegistry", "landau_obs::", "span!("];

/// Evidence that a `Team::scratch(…)` length derives from the policy or a
/// registered budget closure (`E007`): any of these substrings in the
/// paren-balanced argument.
const BUDGET_EVIDENCE_TOKENS: &[&str] = &["budget", "policy", "scratch_len"];

/// The only library files allowed to touch the filesystem directly
/// (`E008`): the checkpoint `Storage` implementations, which own the
/// atomic tmp-write → fsync → rename discipline everyone else must go
/// through. Paths are workspace-relative with `/` separators.
pub const CKPT_STORAGE_FILES: &[&str] = &["crates/core/src/ckpt.rs"];

/// Raw filesystem-write tokens (`E008`).
const RAW_FS_TOKENS: &[&str] = &["fs::write(", "File::create(", "OpenOptions::new("];

/// The only library file allowed to build `Event { … }` literals
/// directly (`E010`): the journal implementation, which owns the typed
/// constructors and the wire schema. Paths are workspace-relative with
/// `/` separators.
pub const JOURNAL_IMPL_FILES: &[&str] = &["crates/obs/src/journal.rs"];

/// Allocation tokens banned inside a journal `.publish(…Event…)`
/// argument on library hot paths (`E010`): the ring publish must stay a
/// handful of atomics.
const ALLOC_TOKENS: &[&str] = &[
    "format!(",
    ".to_string()",
    "String::from(",
    ".to_owned(",
    "vec![",
    "Vec::new(",
];

/// Lint rule identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeWithoutSafetyComment,
    /// Bare `std::thread::spawn` in kernel-crate library code.
    BareThreadSpawn,
    /// Non-`Reducer` floating-point accumulation into lane-shared storage.
    SharedAccumulation,
    /// `.unwrap()`/`.expect(` in resilient-solve-path library code.
    PanicInSolvePath,
    /// Public solver-path function allocating a local stats struct with no
    /// visible tie to the shared observability layer.
    LocalStatsStruct,
    /// `println!`/`eprintln!` in library-crate code (telemetry must go
    /// through the observability layer).
    PrintInLibrary,
    /// `Team::scratch(len)` whose length is not derived from the policy
    /// or a registered budget closure.
    ScratchConstLen,
    /// Raw `std::fs::write`/`File::create` in library-crate code outside
    /// the atomic checkpoint `Storage` implementations.
    RawFsInLibrary,
    /// Blocking call or `MutexGuard` held across an `.await` inside an
    /// async body on the cooperative executor.
    BlockingInAsync,
    /// Ad-hoc `Event { … }` literal, or an allocating journal
    /// `.publish(…Event…)` argument, in library-crate code.
    AdHocJournalEvent,
}

impl Rule {
    /// Short stable code for reports.
    pub fn code(self) -> &'static str {
        match self {
            Rule::UnsafeWithoutSafetyComment => "U001",
            Rule::BareThreadSpawn => "T002",
            Rule::SharedAccumulation => "R003",
            Rule::PanicInSolvePath => "E004",
            Rule::LocalStatsStruct => "E005",
            Rule::PrintInLibrary => "E006",
            Rule::ScratchConstLen => "E007",
            Rule::RawFsInLibrary => "E008",
            Rule::BlockingInAsync => "E009",
            Rule::AdHocJournalEvent => "E010",
        }
    }

    fn describe(self) -> &'static str {
        match self {
            Rule::UnsafeWithoutSafetyComment => {
                "`unsafe` without a `// SAFETY:` comment on the same line or just above"
            }
            Rule::BareThreadSpawn => {
                "bare `thread::spawn` in kernel-crate library code (use landau-par \
                 or the vgpu drivers)"
            }
            Rule::SharedAccumulation => {
                "`+=` into lane-shared storage (cross-lane accumulation must go \
                 through a Reducer join)"
            }
            Rule::PanicInSolvePath => {
                "`.unwrap()`/`.expect(` on the resilient solve path (return a \
                 typed SolveError/RecoveryFailure instead)"
            }
            Rule::LocalStatsStruct => {
                "public solver-path fn allocates a local stats struct without \
                 touching the shared observability layer (open a landau_obs \
                 span or route through a MetricRegistry)"
            }
            Rule::PrintInLibrary => {
                "`println!`/`eprintln!` in library-crate code (publish through \
                 the observability layer — metrics, spans or the timeseries \
                 sink — and let binaries do the printing)"
            }
            Rule::ScratchConstLen => {
                "`Team::scratch(len)` with a hand-written length (derive it \
                 from the TeamPolicy or the kernel's registered budget \
                 closure so the capacity proof stays honest)"
            }
            Rule::RawFsInLibrary => {
                "raw filesystem write in library-crate code (durable state \
                 goes through the checkpoint Storage trait, whose atomic \
                 tmp-write/fsync/rename impl is the only exempt file)"
            }
            Rule::BlockingInAsync => {
                "blocking call or MutexGuard held across `.await` in an \
                 async body (park through the runtime's futures — Notify, \
                 acquire, yield_now — and drop guards before suspending)"
            }
            Rule::AdHocJournalEvent => {
                "ad-hoc journal event in library code (build events \
                 through the typed Event:: constructors so the wire \
                 schema stays stable, and keep publish arguments \
                 allocation-free — the ring publish is a handful of \
                 atomics, not a malloc site)"
            }
        }
    }
}

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintFinding {
    /// The violated rule.
    pub rule: Rule,
    /// Source file.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}\n    {}",
            self.rule.code(),
            self.file.display(),
            self.line,
            self.rule.describe(),
            self.snippet,
        )
    }
}

/// What the linter needs to know about the file it is looking at.
#[derive(Clone, Copy, Debug)]
pub struct LintContext<'a> {
    /// Name of the crate the file belongs to (e.g. `landau-vgpu`).
    pub crate_name: &'a str,
    /// True for integration-test / bench / example sources, where thread
    /// hygiene is not enforced.
    pub is_test_code: bool,
}

impl<'a> LintContext<'a> {
    fn kernel_crate(&self) -> bool {
        KERNEL_CRATES.contains(&self.crate_name)
    }
}

/// One source line after classification: code with literals blanked, and
/// the comment text (if any) kept separately so `// SAFETY:` stays visible
/// while commented-out code cannot trip the code rules.
struct ScrubbedLine {
    code: String,
    comment: String,
}

/// Strip comments and string/char literals, preserving line structure.
///
/// A tiny state machine over `//`, `/* */` (nested), `"…"`, `r#"…"#`
/// and `'c'` literals. Escapes inside strings are honored; lifetimes
/// (`'a`) are not confused with char literals. Literal *contents* are
/// blanked, comment text is routed to the line's `comment` slot.
fn scrub(src: &str) -> Vec<ScrubbedLine> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Line,
        Block(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut st = St::Code;
    let mut out: Vec<ScrubbedLine> = Vec::new();
    for raw in src.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        // A `//` line comment never crosses a newline.
        if st == St::Line {
            st = St::Code;
        }
        let b = raw.as_bytes();
        let mut i = 0;
        while i < b.len() {
            let c = b[i] as char;
            match st {
                St::Code => {
                    if c == '/' && b.get(i + 1) == Some(&b'/') {
                        st = St::Line;
                        comment.push_str(&raw[i..]);
                        break;
                    } else if c == '/' && b.get(i + 1) == Some(&b'*') {
                        st = St::Block(1);
                        i += 2;
                        continue;
                    } else if c == '"' {
                        code.push('"');
                        st = St::Str;
                    } else if c == 'r'
                        && (b.get(i + 1) == Some(&b'"') || b.get(i + 1) == Some(&b'#'))
                    {
                        let mut hashes = 0;
                        while b.get(i + 1 + hashes) == Some(&b'#') {
                            hashes += 1;
                        }
                        if b.get(i + 1 + hashes) == Some(&b'"') {
                            code.push('"');
                            st = St::RawStr(hashes);
                            i += 1 + hashes; // past r##…
                        } else {
                            code.push(c);
                        }
                    } else if c == '\'' {
                        // Char literal iff it closes within a few bytes
                        // (`'x'`, `'\n'`, `'\u{1F600}'`); otherwise a
                        // lifetime.
                        let lookahead = &raw[i + 1..];
                        let is_char = match lookahead.chars().next() {
                            Some('\\') => true,
                            Some(x) => lookahead[x.len_utf8()..].starts_with('\''),
                            None => false,
                        };
                        code.push('\'');
                        if is_char {
                            st = St::Char;
                        }
                    } else {
                        code.push(c);
                    }
                }
                St::Line => unreachable!("handled at line start"),
                St::Block(depth) => {
                    if c == '*' && b.get(i + 1) == Some(&b'/') {
                        st = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        i += 1;
                    } else if c == '/' && b.get(i + 1) == Some(&b'*') {
                        st = St::Block(depth + 1);
                        i += 1;
                    }
                }
                St::Str => {
                    if c == '\\' {
                        i += 1; // skip the escaped byte
                    } else if c == '"' {
                        code.push('"');
                        st = St::Code;
                    }
                }
                St::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for h in 0..hashes {
                            if b.get(i + 1 + h) != Some(&b'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            code.push('"');
                            st = St::Code;
                            i += hashes;
                        }
                    }
                }
                St::Char => {
                    if c == '\\' {
                        i += 1;
                    } else if c == '\'' {
                        code.push('\'');
                        st = St::Code;
                    }
                }
            }
            i += 1;
        }
        // Unterminated string at end of line (multi-line literal).
        out.push(ScrubbedLine { code, comment });
    }
    out
}

/// Does `line` contain `word` bounded by non-identifier characters?
fn has_word(line: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = !line[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

/// Lint one file's source text under `ctx`.
pub fn lint_source(src: &str, path: &Path, ctx: LintContext<'_>) -> Vec<LintFinding> {
    let lines = scrub(src);
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();

    // Everything from a `#[cfg(test)]` attribute to end-of-file is treated
    // as test code for the kernel-crate rules (unit-test modules sit at the
    // bottom of their files in this workspace).
    let test_from = lines
        .iter()
        .position(|l| l.code.contains("#[cfg(test)]"))
        .unwrap_or(usize::MAX);

    let path_str = path.to_string_lossy().replace('\\', "/");
    let no_panic_file = NO_PANIC_FILES.iter().any(|f| path_str.ends_with(f));
    let stats_file = STATS_FILES.iter().any(|f| path_str.ends_with(f));
    let storage_impl_file = CKPT_STORAGE_FILES.iter().any(|f| path_str.ends_with(f));
    let journal_impl_file = JOURNAL_IMPL_FILES.iter().any(|f| path_str.ends_with(f));

    // E005: on the instrumented solve path, walk each `pub fn` (signature
    // through the brace-matched end of its body, over scrubbed code so
    // braces in strings/comments cannot skew the depth count) and require
    // any stats-struct allocation to be accompanied by observability
    // evidence somewhere in the same function.
    if stats_file && !ctx.is_test_code {
        let limit = lines.len().min(test_from);
        let mut ln = 0;
        while ln < limit {
            if !lines[ln].code.trim_start().starts_with("pub fn ") {
                ln += 1;
                continue;
            }
            let sig_ln = ln;
            let mut depth = 0usize;
            let mut opened = false;
            let mut body = String::new();
            let mut end = lines.len();
            'func: for (j, l) in lines.iter().enumerate().skip(sig_ln) {
                body.push_str(&l.code);
                body.push('\n');
                for c in l.code.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                end = j + 1;
                                break 'func;
                            }
                        }
                        // A bodyless declaration (trait method) ends at `;`.
                        ';' if !opened => {
                            end = j + 1;
                            break 'func;
                        }
                        _ => {}
                    }
                }
            }
            // `-> StepStats {` (or `-> &BatchStats {`) is a return type
            // followed by the body's opening brace, not an allocation;
            // skip `->`-prefixed hits through any reference sigils.
            let allocates = STATS_TOKENS.iter().any(|t| {
                let mut start = 0;
                while let Some(pos) = body[start..].find(t) {
                    let at = start + pos;
                    let mut prefix = body[..at].trim_end();
                    loop {
                        if let Some(s) = prefix.strip_suffix("mut") {
                            prefix = s.trim_end();
                        } else if let Some(s) = prefix.strip_suffix('&') {
                            prefix = s.trim_end();
                        } else {
                            break;
                        }
                    }
                    if !prefix.ends_with("->") {
                        return true;
                    }
                    start = at + t.len();
                }
                false
            });
            let observed = OBS_EVIDENCE_TOKENS.iter().any(|t| body.contains(t));
            if allocates && !observed {
                findings.push(LintFinding {
                    rule: Rule::LocalStatsStruct,
                    file: path.to_path_buf(),
                    line: sig_ln + 1,
                    snippet: raw_lines
                        .get(sig_ln)
                        .copied()
                        .unwrap_or("")
                        .trim()
                        .to_string(),
                });
            }
            ln = end.max(sig_ln + 1);
        }
    }

    // E009: async bodies on the cooperative executor must not block the
    // worker thread. Walk the file with a running brace depth, a mask of
    // which lines sit inside an `async` body, and the set of live
    // `MutexGuard` bindings; flag blocking calls and any `.await`
    // reached while a guard is still live. A guard dies when its block
    // closes, when it is `drop()`ed, or (heuristically) at the end of a
    // non-async region.
    if ASYNC_HYGIENE_CRATES.contains(&ctx.crate_name) && !ctx.is_test_code {
        let mask = async_body_mask(&lines);
        let mut depth = 0usize;
        // Live guard bindings: (name, brace depth at the binding).
        let mut guards: Vec<(String, usize)> = Vec::new();
        for (ln, l) in lines.iter().enumerate() {
            let code = &l.code;
            let mut min_depth = depth;
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        min_depth = min_depth.min(depth);
                    }
                    _ => {}
                }
            }
            if !mask[ln] || ln >= test_from {
                guards.clear();
                continue;
            }
            let raw = raw_lines.get(ln).copied().unwrap_or("").trim();
            if BLOCKING_TOKENS.iter().any(|t| code.contains(t)) {
                findings.push(LintFinding {
                    rule: Rule::BlockingInAsync,
                    file: path.to_path_buf(),
                    line: ln + 1,
                    snippet: raw.to_string(),
                });
            }
            // Guards whose enclosing block closed on this line are gone.
            guards.retain(|(_, d)| *d <= min_depth);
            // Process the line's bind / drop / await events in source
            // order, so `let g = m.lock(); work().await` flags but
            // `drop(g); work().await` does not.
            for (_, ev) in line_events(code) {
                match ev {
                    // Bind at the end-of-line depth: right for the
                    // common `let g = m.lock();` (depth unchanged) and
                    // for `if let Ok(g) = m.lock() {`, where the guard
                    // belongs to the block the line opens.
                    Event::Bind(name) => guards.push((name, depth)),
                    Event::Drop(name) => guards.retain(|(n, _)| *n != name),
                    Event::Await => {
                        if !guards.is_empty() {
                            findings.push(LintFinding {
                                rule: Rule::BlockingInAsync,
                                file: path.to_path_buf(),
                                line: ln + 1,
                                snippet: raw.to_string(),
                            });
                            // One finding per line; the guards stay live
                            // so a later `.await` reports again.
                            break;
                        }
                    }
                }
            }
        }
    }

    for (ln, l) in lines.iter().enumerate() {
        let in_test = ctx.is_test_code || ln >= test_from;
        let raw = raw_lines.get(ln).copied().unwrap_or("").trim();

        // U001: unsafe needs a SAFETY comment nearby.
        if has_word(&l.code, "unsafe") {
            let lo = ln.saturating_sub(SAFETY_COMMENT_WINDOW);
            let justified = lines[lo..=ln].iter().any(|w| w.comment.contains("SAFETY:"));
            if !justified {
                findings.push(LintFinding {
                    rule: Rule::UnsafeWithoutSafetyComment,
                    file: path.to_path_buf(),
                    line: ln + 1,
                    snippet: raw.to_string(),
                });
            }
        }

        // E004: no panicking extractors in resilient-solve-path library
        // code (test modules keep their asserting idiom).
        if no_panic_file
            && !in_test
            && (l.code.contains(".unwrap()") || l.code.contains(".expect("))
        {
            findings.push(LintFinding {
                rule: Rule::PanicInSolvePath,
                file: path.to_path_buf(),
                line: ln + 1,
                snippet: raw.to_string(),
            });
        }

        // E006: no stdout/stderr printing from library-crate code — all
        // telemetry flows through the observability layer. Scrubbed code
        // is checked, so occurrences inside strings or comments don't trip.
        if LIBRARY_CRATES.contains(&ctx.crate_name)
            && !in_test
            && (l.code.contains("println!(") || l.code.contains("eprintln!("))
        {
            findings.push(LintFinding {
                rule: Rule::PrintInLibrary,
                file: path.to_path_buf(),
                line: ln + 1,
                snippet: raw.to_string(),
            });
        }

        // E008: library code must not bypass the atomic checkpoint Storage
        // implementations with raw filesystem writes — a torn write there
        // is exactly the corruption class the checkpoint layer defends
        // against.
        if LIBRARY_CRATES.contains(&ctx.crate_name)
            && !in_test
            && !storage_impl_file
            && RAW_FS_TOKENS.iter().any(|t| l.code.contains(t))
        {
            findings.push(LintFinding {
                rule: Rule::RawFsInLibrary,
                file: path.to_path_buf(),
                line: ln + 1,
                snippet: raw.to_string(),
            });
        }

        // E010: journal events in library code go through the typed
        // constructors (the wire schema lives there), and a journal
        // publish must not allocate inside its argument — the ring
        // publish is a handful of atomics, and serve's per-slice hot
        // path traverses it.
        if LIBRARY_CRATES.contains(&ctx.crate_name) && !in_test && !journal_impl_file {
            // Ad-hoc `Event { … }` literal. A path prefix (`::Event {`)
            // still counts; a longer identifier (`KernelEvent {`) does
            // not.
            let mut search = 0;
            let mut flagged = false;
            while let Some(pos) = l.code[search..].find("Event {") {
                let at = search + pos;
                let boundary = !l.code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
                if boundary {
                    findings.push(LintFinding {
                        rule: Rule::AdHocJournalEvent,
                        file: path.to_path_buf(),
                        line: ln + 1,
                        snippet: raw.to_string(),
                    });
                    flagged = true;
                    break;
                }
                search = at + "Event {".len();
            }
            // Allocating publish argument. Only journal publishes are in
            // scope — stats `.publish(registry, prefix)` calls never
            // mention `Event`.
            let mut search = 0;
            while let Some(pos) = l.code[search..].find(".publish(") {
                if flagged {
                    break;
                }
                let arg_start = search + pos + ".publish(".len();
                let arg = balanced_argument(&lines, ln, arg_start);
                if arg.contains("Event") && ALLOC_TOKENS.iter().any(|t| arg.contains(t)) {
                    findings.push(LintFinding {
                        rule: Rule::AdHocJournalEvent,
                        file: path.to_path_buf(),
                        line: ln + 1,
                        snippet: raw.to_string(),
                    });
                    break;
                }
                search = arg_start;
            }
        }

        if !ctx.kernel_crate() || in_test {
            continue;
        }

        // T002: bare thread spawns in kernel-crate library code.
        if l.code.contains("thread::spawn") || l.code.contains("thread::Builder") {
            findings.push(LintFinding {
                rule: Rule::BareThreadSpawn,
                file: path.to_path_buf(),
                line: ln + 1,
                snippet: raw.to_string(),
            });
        }

        // R003: `+=` into lane-shared storage.
        if let Some(pos) = l.code.find("+=") {
            let dest = &l.code[..pos];
            if ["scratch", "shared", "smem"]
                .iter()
                .any(|b| dest.contains(&format!("{b}[")) || dest.contains(&format!("{b}.")))
                && !dest.contains("bytes")
            {
                findings.push(LintFinding {
                    rule: Rule::SharedAccumulation,
                    file: path.to_path_buf(),
                    line: ln + 1,
                    snippet: raw.to_string(),
                });
            }
        }

        // E007: scratch lengths must come from the policy or a registered
        // budget closure, not a hand-written constant. The paren-balanced
        // argument (which may span lines) must mention budget evidence.
        let mut search = 0;
        while let Some(pos) = l.code[search..].find(".scratch(") {
            let arg_start = search + pos + ".scratch(".len();
            let arg = balanced_argument(&lines, ln, arg_start);
            if !BUDGET_EVIDENCE_TOKENS.iter().any(|t| arg.contains(t)) {
                findings.push(LintFinding {
                    rule: Rule::ScratchConstLen,
                    file: path.to_path_buf(),
                    line: ln + 1,
                    snippet: raw.to_string(),
                });
            }
            search = arg_start;
        }
    }
    findings
}

/// The text of a paren-balanced argument list starting at byte `col` of
/// scrubbed line `ln` (just past the opening `(`), joined across lines.
fn balanced_argument(lines: &[ScrubbedLine], ln: usize, col: usize) -> String {
    let mut depth = 1usize;
    let mut arg = String::new();
    for (row, l) in lines.iter().enumerate().skip(ln) {
        let start = if row == ln { col } else { 0 };
        for c in l.code.get(start..).unwrap_or("").chars() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        return arg;
                    }
                }
                _ => {}
            }
            arg.push(c);
        }
        arg.push(' ');
    }
    arg
}

/// One E009-relevant event on a scrubbed line, in source order.
enum Event {
    /// `let <name> = … .lock(…)` — a `MutexGuard` binding goes live.
    Bind(String),
    /// `drop(<name>)` — an explicit release.
    Drop(String),
    /// An `.await` suspension point.
    Await,
}

/// Extract the bind / drop / await events on one scrubbed line, sorted
/// by column. A `.lock(` produces a bind only when it is `let`-bound
/// AND the call terminates the initializer (possibly through
/// `.unwrap()` / `.expect(…)` / `?`): a longer chain like
/// `m.lock().len()` derefs through a temporary that dies at the end of
/// its own statement and never outlives an `.await`.
fn line_events(code: &str) -> Vec<(usize, Event)> {
    let mut events = Vec::new();
    let mut search = 0;
    while let Some(pos) = code[search..].find(".lock(") {
        let at = search + pos;
        search = at + ".lock(".len();
        let stmt = &code[..at];
        let stmt = &stmt[stmt.rfind(';').map_or(0, |p| p + 1)..];
        let Some(let_at) = stmt.rfind("let ") else {
            continue;
        };
        let Some(eq) = stmt[let_at..].find('=') else {
            continue;
        };
        if !lock_call_is_terminal(code, at + ".lock(".len()) {
            continue;
        }
        // Last identifier of the pattern: handles `mut g` and
        // destructuring wrappers like `Ok(g)`.
        let pat = &stmt[let_at + 4..let_at + eq];
        let name: String = pat
            .chars()
            .rev()
            .skip_while(|c| !c.is_alphanumeric() && *c != '_')
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        if !name.is_empty() {
            events.push((at, Event::Bind(name)));
        }
    }
    let mut search = 0;
    while let Some(pos) = code[search..].find("drop(") {
        let at = search + pos;
        search = at + "drop(".len();
        let inner = code[at + 5..].split(')').next().unwrap_or("").trim();
        events.push((at, Event::Drop(inner.to_string())));
    }
    let mut search = 0;
    while let Some(pos) = code[search..].find(".await") {
        let at = search + pos;
        search = at + ".await".len();
        events.push((at, Event::Await));
    }
    events.sort_by_key(|(pos, _)| *pos);
    events
}

/// Does the `.lock(` call whose argument starts at byte `from` end the
/// expression it sits in? Accepts trailing `?`, `.unwrap()`,
/// `.expect(…)` and `.unwrap_or_else(…)` (the guard still flows to the
/// binding through those), then requires `;`, `{` or end-of-line. A
/// call whose parens never close on this line is treated as terminal
/// (conservative: multi-line initializers keep their guard).
fn lock_call_is_terminal(code: &str, from: usize) -> bool {
    let Some(close) = balanced_close(code, from) else {
        return true;
    };
    let mut i = close + 1;
    loop {
        while code[i..].starts_with([' ', '\t']) {
            i += 1;
        }
        if let Some(rest) = code[i..].strip_prefix('?') {
            i = code.len() - rest.len();
        } else if let Some(rest) = code[i..].strip_prefix(".unwrap()") {
            i = code.len() - rest.len();
        } else if code[i..].starts_with(".expect(") || code[i..].starts_with(".unwrap_or_else(") {
            let open = i + code[i..].find('(').unwrap_or(0) + 1;
            match balanced_close(code, open) {
                Some(c) => i = c + 1,
                None => return true,
            }
        } else {
            let rest = code[i..].trim_start();
            return rest.is_empty() || rest.starts_with(';') || rest.starts_with('{');
        }
    }
}

/// Index of the `)` matching an open paren whose contents start at
/// byte `from` of `code`, or `None` if it never closes on this line.
fn balanced_close(code: &str, from: usize) -> Option<usize> {
    let mut depth = 1usize;
    for (i, c) in code[from..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(from + i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Mark every line that sits inside an `async fn` / `async move` /
/// `async {…}` body. Runs over scrubbed code, so `async` in prose or
/// string literals cannot open a region.
fn async_body_mask(lines: &[ScrubbedLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    for ln in 0..lines.len() {
        let code = lines[ln].code.clone();
        let mut search = 0;
        while let Some(pos) = code[search..].find("async") {
            let at = search + pos;
            search = at + "async".len();
            let before_ok = at == 0
                || !code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after_ok = !code[at + 5..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if before_ok && after_ok {
                mark_async_body(lines, ln, at + 5, &mut mask);
            }
        }
    }
    mask
}

/// Brace-match the body following an `async` keyword at (`ln`, `col`)
/// and set its lines in `mask`. A `;` before any `{` is a bodyless
/// declaration (trait method signature) and marks nothing.
fn mark_async_body(lines: &[ScrubbedLine], ln: usize, col: usize, mask: &mut [bool]) {
    let mut depth = 0usize;
    let mut opened = false;
    for (row, l) in lines.iter().enumerate().skip(ln) {
        let start = if row == ln { col } else { 0 };
        for c in l.code.get(start..).unwrap_or("").chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        mask[row] = true;
                        return;
                    }
                }
                ';' if !opened => return,
                _ => {}
            }
        }
        if opened {
            mask[row] = true;
        }
    }
}

/// Recursively gather `.rs` files under `dir` (sorted for stable reports).
pub fn rust_sources(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name.starts_with('.') {
                continue;
            }
            out.extend(rust_sources(&p));
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
    out
}

/// Lint every crate in the workspace rooted at `root`. Returns all
/// findings, sorted by file then line.
pub fn lint_workspace(root: &Path) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    // The facade crate's own sources (if any) live under root/src.
    crate_dirs.push(root.to_path_buf());
    for dir in crate_dirs {
        let crate_name = match crate_name_of(&dir) {
            Some(n) => n,
            None => continue,
        };
        for sub in ["src", "tests", "benches", "examples"] {
            let is_test_code = sub != "src";
            for file in rust_sources(&dir.join(sub)) {
                let Ok(src) = std::fs::read_to_string(&file) else {
                    continue;
                };
                let rel = file.strip_prefix(root).unwrap_or(&file);
                findings.extend(lint_source(
                    &src,
                    rel,
                    LintContext {
                        crate_name: &crate_name,
                        is_test_code,
                    },
                ));
            }
        }
    }
    findings.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    findings
}

/// Crate name from a directory's `Cargo.toml` (first `name = "…"`).
fn crate_name_of(dir: &Path) -> Option<String> {
    let manifest = std::fs::read_to_string(dir.join("Cargo.toml")).ok()?;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_ctx() -> LintContext<'static> {
        LintContext {
            crate_name: "landau-vgpu",
            is_test_code: false,
        }
    }

    fn findings(src: &str, ctx: LintContext<'_>) -> Vec<Rule> {
        lint_source(src, Path::new("x.rs"), ctx)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn unsafe_without_safety_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        assert_eq!(
            findings(src, kernel_ctx()),
            [Rule::UnsafeWithoutSafetyComment]
        );
    }

    #[test]
    fn unsafe_with_nearby_safety_passes() {
        let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
        assert!(findings(src, kernel_ctx()).is_empty());
    }

    #[test]
    fn safety_comment_window_is_bounded() {
        let filler = "    let x = 1;\n".repeat(SAFETY_COMMENT_WINDOW + 1);
        let src = format!("// SAFETY: too far away\n{filler}unsafe {{ () }}\n");
        assert_eq!(
            findings(&src, kernel_ctx()),
            [Rule::UnsafeWithoutSafetyComment]
        );
    }

    #[test]
    fn unsafe_inside_string_or_comment_is_ignored() {
        let src =
            "fn f() {\n    let s = \"unsafe\"; // unsafe mentioned here\n    /* unsafe */\n}\n";
        assert!(findings(src, kernel_ctx()).is_empty());
    }

    #[test]
    fn thread_spawn_in_kernel_crate_is_flagged() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n}\n";
        assert_eq!(findings(src, kernel_ctx()), [Rule::BareThreadSpawn]);
    }

    #[test]
    fn thread_spawn_in_test_module_is_exempt() {
        let src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { std::thread::spawn(|| {}); }\n}\n";
        assert!(findings(src, kernel_ctx()).is_empty());
    }

    #[test]
    fn thread_spawn_in_non_kernel_crate_is_allowed() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let ctx = LintContext {
            crate_name: "landau-hwsim",
            is_test_code: false,
        };
        assert!(findings(src, ctx).is_empty());
    }

    #[test]
    fn shared_accumulation_is_flagged() {
        let src = "fn f(scratch: &mut [f64], v: f64) {\n    scratch[0] += v;\n}\n";
        assert_eq!(findings(src, kernel_ctx()), [Rule::SharedAccumulation]);
        // Tally bookkeeping named *_bytes is not lane data.
        let ok = "fn f(t: &mut T, n: u64) {\n    t.shared_bytes += n;\n}\n";
        assert!(findings(ok, kernel_ctx()).is_empty());
    }

    #[test]
    fn raw_fs_write_in_library_crate_is_flagged() {
        let src = "fn save(p: &std::path::Path, b: &[u8]) {\n    let _ = std::fs::write(p, b);\n    let _ = std::fs::File::create(p);\n}\n";
        let ctx = LintContext {
            crate_name: "landau-core",
            is_test_code: false,
        };
        assert_eq!(
            findings(src, ctx),
            [Rule::RawFsInLibrary, Rule::RawFsInLibrary]
        );
    }

    #[test]
    fn raw_fs_write_in_storage_impl_is_exempt() {
        let src =
            "fn save(p: &std::path::Path, b: &[u8]) {\n    let _ = std::fs::File::create(p);\n}\n";
        let ctx = LintContext {
            crate_name: "landau-core",
            is_test_code: false,
        };
        let got: Vec<Rule> = lint_source(src, Path::new("crates/core/src/ckpt.rs"), ctx)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn raw_fs_write_in_presentation_crates_and_tests_is_allowed() {
        let src = "fn f() { let _ = std::fs::write(\"out.json\", \"{}\"); }\n";
        let bench = LintContext {
            crate_name: "landau-bench",
            is_test_code: false,
        };
        assert!(findings(src, bench).is_empty());
        let test_src =
            "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { let _ = std::fs::write(\"t\", \"x\"); }\n}\n";
        let lib = LintContext {
            crate_name: "landau-core",
            is_test_code: false,
        };
        assert!(findings(test_src, lib).is_empty());
    }

    #[test]
    fn println_in_library_crate_is_flagged() {
        let src =
            "fn f(x: f64) {\n    println!(\"x = {x}\");\n    eprintln!(\"also stderr\");\n}\n";
        let ctx = LintContext {
            crate_name: "landau-core",
            is_test_code: false,
        };
        assert_eq!(
            findings(src, ctx),
            [Rule::PrintInLibrary, Rule::PrintInLibrary]
        );
    }

    #[test]
    fn println_in_library_test_code_is_exempt() {
        // Inline #[cfg(test)] module.
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { println!(\"dbg\"); }\n}\n";
        let ctx = LintContext {
            crate_name: "landau-obs",
            is_test_code: false,
        };
        assert!(findings(src, ctx).is_empty());
        // Integration test / bench file.
        let src = "fn g() { eprintln!(\"bench progress\"); }\n";
        let ctx = LintContext {
            crate_name: "landau-quench",
            is_test_code: true,
        };
        assert!(findings(src, ctx).is_empty());
    }

    #[test]
    fn println_in_presentation_crates_is_allowed() {
        let src = "fn f() { println!(\"table row\"); }\n";
        for name in ["landau-bench", "landau-hwsim", "landau-check"] {
            let ctx = LintContext {
                crate_name: name,
                is_test_code: false,
            };
            assert!(findings(src, ctx).is_empty(), "{name} should print freely");
        }
    }

    #[test]
    fn println_in_string_or_comment_is_ignored() {
        let src = "fn f() -> &'static str {\n    // println!(\"commented out\")\n    \"println!(in a string)\"\n}\n";
        let ctx = LintContext {
            crate_name: "landau-fem",
            is_test_code: false,
        };
        assert!(findings(src, ctx).is_empty());
    }

    #[test]
    fn word_boundaries_matter() {
        // `unsafe_marker` is not the keyword `unsafe`.
        let src = "fn f() { let unsafe_marker = 1; let _ = unsafe_marker; }\n";
        assert!(findings(src, kernel_ctx()).is_empty());
    }

    #[test]
    fn raw_strings_and_nested_blocks_scrub_clean() {
        let src = "fn f() -> &'static str {\n    /* outer /* nested unsafe */ still comment */\n    r#\"thread::spawn in a raw string\"#\n}\n";
        assert!(findings(src, kernel_ctx()).is_empty());
    }

    #[test]
    fn unwrap_in_solve_path_is_flagged() {
        let src = "fn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/core/src/solver.rs"),
            LintContext {
                crate_name: "landau-core",
                is_test_code: false,
            },
        );
        assert_eq!(
            fs.iter().map(|f| f.rule).collect::<Vec<_>>(),
            [Rule::PanicInSolvePath]
        );
        // `.expect(` is equally denied.
        let src = "fn f(o: Option<u8>) -> u8 {\n    o.expect(\"x\")\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/quench/src/driver.rs"),
            LintContext {
                crate_name: "landau-quench",
                is_test_code: false,
            },
        );
        assert_eq!(
            fs.iter().map(|f| f.rule).collect::<Vec<_>>(),
            [Rule::PanicInSolvePath]
        );
    }

    #[test]
    fn unwrap_in_solve_path_tests_is_exempt() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(o: Option<u8>) -> u8 { o.unwrap() }\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/core/src/batch.rs"),
            LintContext {
                crate_name: "landau-core",
                is_test_code: false,
            },
        );
        assert!(fs.is_empty(), "{fs:?}");
        // `.unwrap_or` family is not a panic and stays allowed.
        let src = "fn f(o: Option<u8>) -> u8 {\n    o.unwrap_or(0)\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/core/src/recover.rs"),
            LintContext {
                crate_name: "landau-core",
                is_test_code: false,
            },
        );
        assert!(fs.is_empty(), "{fs:?}");
        // Other files keep their unwraps.
        let src = "fn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/core/src/moments.rs"),
            LintContext {
                crate_name: "landau-core",
                is_test_code: false,
            },
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    fn solve_path_ctx() -> LintContext<'static> {
        LintContext {
            crate_name: "landau-core",
            is_test_code: false,
        }
    }

    #[test]
    fn local_stats_without_obs_is_flagged() {
        let src = "pub fn kernel(n: usize) -> Tally {\n    let mut t = Tally { flops: 0 };\n    t.flops += n as u64;\n    t\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/core/src/kernels.rs"),
            solve_path_ctx(),
        );
        assert_eq!(
            fs.iter().map(|f| f.rule).collect::<Vec<_>>(),
            [Rule::LocalStatsStruct]
        );
        assert_eq!(fs[0].line, 1);
    }

    #[test]
    fn local_stats_with_obs_evidence_passes() {
        // An explicit span is evidence…
        let src = "pub fn kernel(n: usize) -> Tally {\n    let _sp = landau_obs::span(landau_obs::names::KERNEL);\n    Tally { flops: n as u64 }\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/core/src/kernels.rs"),
            solve_path_ctx(),
        );
        assert!(fs.is_empty(), "{fs:?}");
        // …and so is a registry in the signature.
        let src = "pub fn publish(reg: &MetricRegistry) -> StepStats {\n    let s = StepStats { newton_iters: 0 };\n    s\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/core/src/solver.rs"),
            solve_path_ctx(),
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn local_stats_exemptions() {
        // Private fns are constructor plumbing, not public API surface.
        let src = "fn helper() -> Tally {\n    Tally { flops: 0 }\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/core/src/kernels.rs"),
            solve_path_ctx(),
        );
        assert!(fs.is_empty(), "{fs:?}");
        // Files off the instrumented solve path keep their local stats.
        let src = "pub fn helper() -> Tally {\n    Tally { flops: 0 }\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/core/src/moments.rs"),
            solve_path_ctx(),
        );
        assert!(fs.is_empty(), "{fs:?}");
        // Test modules build stats structs freely.
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    pub fn g() -> Tally { Tally { flops: 1 } }\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/core/src/kernels.rs"),
            solve_path_ctx(),
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn local_stats_brace_matching_scopes_the_function() {
        // The evidence must be inside the *same* function: a span in a
        // neighbouring fn does not excuse the bare one.
        let src = "pub fn instrumented() {\n    let _sp = landau_obs::span(landau_obs::names::KERNEL);\n}\n\npub fn bare() -> Tally {\n    Tally { flops: 0 }\n}\n";
        let fs = lint_source(
            src,
            Path::new("crates/core/src/kernels.rs"),
            solve_path_ctx(),
        );
        assert_eq!(
            fs.iter().map(|f| f.rule).collect::<Vec<_>>(),
            [Rule::LocalStatsStruct]
        );
        assert_eq!(fs[0].line, 5);
    }

    #[test]
    fn scratch_const_len_is_flagged() {
        let src = "fn k<T: Team>(m: &mut T, nq: usize) {\n    let mut sm = m.scratch(3 * nq);\n    let _ = sm;\n}\n";
        assert_eq!(findings(src, kernel_ctx()), [Rule::ScratchConstLen]);
        let src = "fn k<T: Team>(m: &mut T) {\n    let _ = m.scratch(144);\n}\n";
        assert_eq!(findings(src, kernel_ctx()), [Rule::ScratchConstLen]);
    }

    #[test]
    fn scratch_budget_derived_len_passes() {
        for arg in [
            "budget_slots",
            "staging_scratch_budget(&dims, &policy)",
            "policy.vector_length * 2",
            "self.scratch_len",
        ] {
            let src = format!("fn k<T: Team>(m: &mut T) {{\n    let _ = m.scratch({arg});\n}}\n");
            assert!(findings(&src, kernel_ctx()).is_empty(), "{arg}");
        }
    }

    #[test]
    fn scratch_const_len_spans_lines_and_exempts_tests() {
        // Multi-line argument: evidence on a later line still counts.
        let src = "fn k<T: Team>(m: &mut T) {\n    let _ = m.scratch(\n        the_budget(\n            3,\n        ),\n    );\n}\n";
        assert!(findings(src, kernel_ctx()).is_empty());
        // Multi-line argument with no evidence is still flagged, once.
        let src = "fn k<T: Team>(m: &mut T) {\n    let _ = m.scratch(\n        (2 + 2) * 36,\n    );\n}\n";
        assert_eq!(findings(src, kernel_ctx()), [Rule::ScratchConstLen]);
        // Test modules and non-kernel crates allocate freely.
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g<T: Team>(m: &mut T) { let _ = m.scratch(100); }\n}\n";
        assert!(findings(src, kernel_ctx()).is_empty());
        let src = "fn g<T: Team>(m: &mut T) { let _ = m.scratch(9000); }\n";
        let ctx = LintContext {
            crate_name: "landau-check",
            is_test_code: false,
        };
        assert!(findings(src, ctx).is_empty());
    }

    fn serve_ctx() -> LintContext<'static> {
        LintContext {
            crate_name: "landau-serve",
            is_test_code: false,
        }
    }

    #[test]
    fn blocking_sleep_in_async_body_is_flagged() {
        let src = "pub async fn poll_me() {\n    std::thread::sleep(std::time::Duration::from_millis(5));\n}\n";
        assert_eq!(findings(src, serve_ctx()), [Rule::BlockingInAsync]);
        // `async move` blocks are bodies too.
        let src = "fn spawn_it(rt: &Runtime) {\n    rt.spawn(async move {\n        thread::sleep(d);\n    });\n}\n";
        assert_eq!(findings(src, serve_ctx()), [Rule::BlockingInAsync]);
    }

    #[test]
    fn blocking_calls_in_sync_code_are_not_e009() {
        // The runtime's own sync plumbing (wait_idle, test harnesses)
        // parks threads legitimately — only async bodies are executor
        // territory.
        let src =
            "pub fn wait_idle(&self) {\n    std::thread::sleep(Duration::from_micros(200));\n}\n";
        assert!(findings(src, serve_ctx()).is_empty());
        // Other crates' async code is out of scope for E009.
        let src = "pub async fn f() {\n    std::thread::sleep(d);\n}\n";
        let ctx = LintContext {
            crate_name: "landau-core",
            is_test_code: false,
        };
        assert!(findings(src, ctx).is_empty());
    }

    #[test]
    fn fs_io_in_async_body_is_flagged() {
        let src =
            "async fn load(p: &Path) -> Vec<u8> {\n    std::fs::read(p).unwrap_or_default()\n}\n";
        assert_eq!(findings(src, serve_ctx()), [Rule::BlockingInAsync]);
    }

    #[test]
    fn guard_across_await_is_flagged() {
        let src = "async fn f(m: &Mutex<u32>) {\n    let mut st = m.lock();\n    *st += 1;\n    tick().await;\n}\n";
        assert_eq!(findings(src, serve_ctx()), [Rule::BlockingInAsync]);
        // The finding lands on the `.await` line.
        let fs = lint_source(src, Path::new("x.rs"), serve_ctx());
        assert_eq!(fs[0].line, 4);
    }

    #[test]
    fn guard_dropped_before_await_passes() {
        // Explicit drop releases the guard.
        let src = "async fn f(m: &Mutex<u32>) {\n    let st = m.lock();\n    drop(st);\n    tick().await;\n}\n";
        assert!(findings(src, serve_ctx()).is_empty());
        // A guard scoped to an inner block dies when the block closes.
        let src = "async fn f(m: &Mutex<u32>) {\n    {\n        let st = m.lock();\n        let _ = st;\n    }\n    tick().await;\n}\n";
        assert!(findings(src, serve_ctx()).is_empty());
        // A temporary (no `let`) is gone at the end of its statement.
        let src =
            "async fn f(m: &Mutex<u32>) {\n    let v = m.lock().len();\n    tick(v).await;\n}\n";
        assert!(findings(src, serve_ctx()).is_empty());
    }

    #[test]
    fn e009_exempts_test_code() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    async fn g(m: &Mutex<u32>) {\n        let st = m.lock();\n        tick().await;\n        drop(st);\n    }\n}\n";
        assert!(findings(src, serve_ctx()).is_empty());
        let src = "async fn g() { std::thread::sleep(d); }\n";
        let ctx = LintContext {
            crate_name: "landau-serve",
            is_test_code: true,
        };
        assert!(findings(src, ctx).is_empty());
    }

    #[test]
    fn async_in_string_or_comment_opens_no_body() {
        let src = "fn f() -> &'static str {\n    // async fn commentary\n    \"async {\"\n}\nfn g() { std::thread::sleep(d); }\n";
        assert!(findings(src, serve_ctx()).is_empty());
    }

    #[test]
    fn ad_hoc_event_literal_is_flagged() {
        let src = "fn f(j: &Journal) {\n    j.publish(Event { seq: 0, kind: EventKind::Recovery, job: 0, slice: 0, step: 0, value: 0.0, code: Cow::Borrowed(\"\"), tenant: None });\n}\n";
        assert_eq!(findings(src, serve_ctx()), [Rule::AdHocJournalEvent]);
        // Path-qualified literals are still ad-hoc (and the `-> Event {`
        // signature is flagged too: constructors live in the journal).
        let src = "fn f() -> landau_obs::Event {\n    landau_obs::Event { seq: 0 }\n}\n";
        assert_eq!(
            findings(src, serve_ctx()),
            [Rule::AdHocJournalEvent, Rule::AdHocJournalEvent]
        );
    }

    #[test]
    fn longer_event_identifiers_are_not_e010() {
        // `KernelEvent` is a different type; `Event {` must match on an
        // identifier boundary.
        let src = "fn f() {\n    let e = KernelEvent { id: 3 };\n    consume(e);\n}\n";
        assert!(findings(src, serve_ctx()).is_empty());
    }

    #[test]
    fn allocating_publish_argument_is_flagged() {
        let src = "fn f(j: &Journal, site: &str) {\n    j.publish(Event::recovery_owned(format!(\"retry-{site}\"), 1));\n}\n";
        assert_eq!(findings(src, serve_ctx()), [Rule::AdHocJournalEvent]);
        // Multi-line arguments are searched paren-balanced.
        let src = "fn f(j: &Journal, site: &str) {\n    j.publish(Event::recovery_owned(\n        site.to_string(),\n        1,\n    ));\n}\n";
        assert_eq!(findings(src, serve_ctx()), [Rule::AdHocJournalEvent]);
    }

    #[test]
    fn typed_constructor_publish_passes() {
        let src = "fn f(j: &Journal) {\n    j.publish(Event::recovery(\"step_retry\", 2));\n    j.publish(Event::slice_start(1, &tenant, 0));\n}\n";
        assert!(findings(src, serve_ctx()).is_empty());
    }

    #[test]
    fn stats_publish_is_not_e010() {
        // Metric-stats publishes allocate prefixed names freely — only
        // journal publishes (arguments mentioning `Event`) are in scope.
        let src = "fn f(s: &StepTally, m: &MetricRegistry) {\n    s.publish(m, format!(\"quench.{}\", 1).as_str());\n}\n";
        assert!(findings(src, serve_ctx()).is_empty());
    }

    #[test]
    fn e010_exempts_tests_and_the_journal_impl() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g(j: &Journal) { j.publish(Event { seq: 0 }); }\n}\n";
        assert!(findings(src, serve_ctx()).is_empty());
        // The journal implementation owns the constructors.
        let src = "fn scoped(kind: EventKind) -> Event {\n    Event { seq: 0, kind }\n}\n";
        let obs_ctx = LintContext {
            crate_name: "landau-obs",
            is_test_code: false,
        };
        let fs = lint_source(src, Path::new("crates/obs/src/journal.rs"), obs_ctx);
        assert!(fs.is_empty(), "{fs:?}");
        // The same source elsewhere in the obs crate is flagged — both
        // the `-> Event {` signature (constructors live in the journal)
        // and the literal itself.
        assert_eq!(
            findings(src, obs_ctx),
            [Rule::AdHocJournalEvent, Rule::AdHocJournalEvent]
        );
    }

    #[test]
    fn workspace_lint_is_clean() {
        // The repo's own sources must satisfy the rules the binary enforces.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap();
        let fs = lint_workspace(root);
        assert!(
            fs.is_empty(),
            "workspace lint found {} issue(s):\n{}",
            fs.len(),
            fs.iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
