//! Workspace linter: `cargo run -p landau-check --bin lint`.
//!
//! Walks every crate in the workspace and applies the rules in
//! `landau_check` (U001 SAFETY comments, T002 thread hygiene, R003
//! lane-accumulation discipline). Exits nonzero on any finding.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/check -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let root = std::env::args_os()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(workspace_root);
    let findings = landau_check::lint_workspace(&root);
    if findings.is_empty() {
        println!("lint: workspace clean ({})", root.display());
        return ExitCode::SUCCESS;
    }
    eprintln!("lint: {} finding(s) in {}", findings.len(), root.display());
    for f in &findings {
        eprintln!("{f}");
    }
    ExitCode::FAILURE
}
