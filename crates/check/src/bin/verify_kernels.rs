//! Static kernel verifier driver: `cargo run -p landau-check --bin
//! verify-kernels`.
//!
//! Enumerates the kernel registry (`landau_core::KernelRegistry`), proves
//! race freedom / barrier uniformity / capacity / reduction determinism
//! for every registered kernel over its policy family, then runs the
//! seeded-defect corpus and checks each planted bug is flagged with the
//! expected rule. Emits two machine-readable artifacts at the workspace
//! root:
//!
//! * `VERIFY_kernels.json` — the full findings report (per-kernel proof
//!   tallies, violations, corpus verdicts), uploaded by CI;
//! * `BENCH_verify.json` — the flat gate metrics (`verify.violations`,
//!   `verify.corpus_missed`) the bench-regression gate pins to exactly 0.
//!
//! Exits nonzero when any production kernel has a violation or any corpus
//! defect goes uncaught.

use landau_check::corpus::{corpus, run_corpus_kernel};
use landau_check::verify::{verify_registry, VerifyReport};
use landau_core::registry::{KernelRegistry, VerifyInput};
use landau_obs::json::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/check -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn num(n: usize) -> Json {
    Json::Num(n as f64)
}

fn report_json(report: &VerifyReport, corpus_rows: &[(String, String, bool)]) -> (Json, Json) {
    let kernels = report
        .kernels
        .iter()
        .map(|k| {
            Json::Obj(vec![
                ("name".into(), Json::Str(k.name.clone())),
                (
                    "vector_lengths".into(),
                    Json::Arr(k.vector_lengths.iter().map(|&v| num(v)).collect()),
                ),
                ("blocks".into(), num(k.blocks)),
                (
                    "proofs".into(),
                    Json::Obj(vec![
                        ("affine".into(), num(k.proofs.affine)),
                        ("widened".into(), num(k.proofs.widened)),
                        ("enumerated".into(), num(k.proofs.enumerated)),
                    ]),
                ),
                (
                    "findings".into(),
                    Json::Arr(
                        k.findings
                            .iter()
                            .map(|f| {
                                Json::Obj(vec![
                                    ("rule".into(), Json::Str(f.rule.code().into())),
                                    ("vector_length".into(), num(f.vector_length)),
                                    (
                                        "spec".into(),
                                        f.spec.map_or(Json::Null, |s| Json::Str(s.into())),
                                    ),
                                    ("detail".into(), Json::Str(f.finding.to_string())),
                                    ("occurrences".into(), num(f.occurrences)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let corpus_arr = corpus_rows
        .iter()
        .map(|(name, expected, caught)| {
            Json::Obj(vec![
                ("name".into(), Json::Str(name.clone())),
                ("expected".into(), Json::Str(expected.clone())),
                ("caught".into(), Json::Bool(*caught)),
            ])
        })
        .collect();
    let violations = report.violations();
    let missed = corpus_rows.iter().filter(|(_, _, caught)| !caught).count();
    let full = Json::Obj(vec![
        ("kernels".into(), Json::Arr(kernels)),
        ("corpus".into(), Json::Arr(corpus_arr)),
        ("violations".into(), num(violations)),
        ("corpus_missed".into(), num(missed)),
    ]);
    let gate = Json::Obj(vec![
        ("verify.violations".into(), num(violations)),
        ("verify.corpus_missed".into(), num(missed)),
    ]);
    (full, gate)
}

fn write_json(path: &Path, j: &Json) {
    let mut s = String::new();
    j.write(&mut s);
    s.push('\n');
    if let Err(e) = std::fs::write(path, &s) {
        eprintln!("verify-kernels: cannot write {}: {e}", path.display());
    }
}

fn main() -> ExitCode {
    let root = workspace_root();
    let reg = KernelRegistry::standard();
    let input = VerifyInput::representative();

    println!(
        "verify-kernels: {} registered kernel(s), {} device spec(s)",
        reg.entries().len(),
        landau_vgpu::GpuSpec::all_named().len()
    );
    let report = verify_registry(&reg, &input);
    for k in &report.kernels {
        println!(
            "  {:<32} blocks={:<4} proofs: affine={} widened={} enumerated={} -> {}",
            k.name,
            k.blocks,
            k.proofs.affine,
            k.proofs.widened,
            k.proofs.enumerated,
            if k.is_clean() {
                "clean".to_string()
            } else {
                format!("{} VIOLATION(S)", k.findings.len())
            }
        );
        for f in &k.findings {
            println!("    {f}");
        }
    }

    let mut corpus_rows: Vec<(String, String, bool)> = Vec::new();
    for k in corpus() {
        let bf = run_corpus_kernel(&k);
        let caught = match k.expected {
            Some(rule) => bf.findings.iter().any(|(r, _, _)| *r == rule),
            None => bf.findings.is_empty(),
        };
        let expected = k
            .expected
            .map(|r| r.code().to_string())
            .unwrap_or_else(|| "clean".to_string());
        println!(
            "  corpus {:<24} expects {:<10} -> {}",
            k.name,
            expected,
            if caught { "caught" } else { "MISSED" }
        );
        corpus_rows.push((k.name.to_string(), expected, caught));
    }

    let (full, gate) = report_json(&report, &corpus_rows);
    write_json(&root.join("VERIFY_kernels.json"), &full);
    write_json(&root.join("BENCH_verify.json"), &gate);

    let violations = report.violations();
    let missed = corpus_rows.iter().filter(|(_, _, c)| !c).count();
    let proofs = report.proofs();
    println!(
        "verify-kernels: {} obligation(s) discharged ({} affine / {} widened / {} enumerated), \
         {} violation(s), {} corpus miss(es)",
        proofs.total(),
        proofs.affine,
        proofs.widened,
        proofs.enumerated,
        violations,
        missed
    );
    if violations > 0 || missed > 0 {
        eprintln!("verify-kernels: FAILED");
        return ExitCode::FAILURE;
    }
    println!("verify-kernels: all kernels proved");
    ExitCode::SUCCESS
}
