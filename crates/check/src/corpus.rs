//! Seeded-defect kernel corpus: the verifier's negative test set.
//!
//! Each corpus kernel plants exactly one defect class from the virtual-GPU
//! execution model, and records which [`VerifyRule`] the analyzer must
//! raise for it. The `verify-kernels` driver (and the integration tests)
//! run the corpus alongside the production registry: every defect must be
//! flagged with the *right* rule — a verifier that misses a planted race
//! or barrier bug is itself broken, and the CI gate fails.
//!
//! The kernels are written against the plain [`Team`] trait so they run
//! under the same [`SymbolicCtx`] factory as production kernels; lengths
//! here are intentionally hand-written (this crate is not a kernel crate,
//! so lint E007 does not apply — the defects are the point).

use crate::verify::{analyze_block, BlockFindings, VerifyRule};
use landau_vgpu::counters::Tally;
use landau_vgpu::kokkos::{Reducer, ReducerCheck, Team, TeamFactory, TeamPolicy};
use landau_vgpu::symbolic::SymbolicCtx;

/// One corpus entry: a deliberately broken (or deliberately clean) kernel
/// and the single rule the verifier must (or must not) raise.
pub struct CorpusKernel {
    /// Corpus name (report key).
    pub name: &'static str,
    /// The rule the analyzer must flag; `None` for the clean control.
    pub expected: Option<VerifyRule>,
    /// Declared scratch budget handed to the analyzer (the budget-drift
    /// entry declares a wrong one on purpose).
    pub declared_budget: Option<usize>,
    /// Run the kernel once under the symbolic factory.
    pub run: fn(&SymbolicCtx),
}

fn member_policy(team_size: usize, vl: usize) -> TeamPolicy {
    TeamPolicy {
        league_size: 1,
        team_size,
        vector_length: vl,
    }
}

/// Lanes used by the corpus kernels (≥ 2 so lane interactions exist).
const VL: usize = 4;

/// Missing barrier between the staging writes and the broadcast reads:
/// every lane reads slots other lanes wrote in the same epoch.
fn missing_barrier(ctx: &SymbolicCtx) {
    let mut t = Tally::new();
    let mut m = ctx.member(0, member_policy(1, VL), &mut t);
    let n = 2 * VL;
    let mut sm = m.scratch(n);
    m.vector_for(n, |j, lane| sm.write(lane, j, j as f64));
    // BUG: no m.barrier() here.
    let mut acc = 0.0;
    for p in 0..VL {
        for i in 0..n {
            acc += sm.read(p, i);
        }
    }
    assert!(acc.is_finite());
}

/// Lane-divergent conditional barrier: one lane's predicate disagrees.
fn divergent_barrier(ctx: &SymbolicCtx) {
    let mut t = Tally::new();
    let mut m = ctx.member(0, member_policy(1, VL), &mut t);
    let mut sm = m.scratch(VL);
    m.vector_for(VL, |j, lane| sm.write(lane, j, 1.0));
    // BUG: lane VL−1 skips the barrier.
    m.barrier_if(|lane| lane != VL - 1);
}

/// Off-by-one staging stride: lane `p` writes `{2p, 2p+1, 2p+2}`, so
/// adjacent lanes collide at `2p+2`.
fn off_by_one_stride(ctx: &SymbolicCtx) {
    let mut t = Tally::new();
    let mut m = ctx.member(0, member_policy(1, VL), &mut t);
    let mut sm = m.scratch(2 * VL + 2);
    for p in 0..VL {
        for k in 0..3 {
            // BUG: the per-lane window is 3 slots wide on a stride of 2.
            sm.write(p, 2 * p + k, (p + k) as f64);
        }
    }
}

/// Over-allocates scratch past the smallest modeled device: 7000 slots =
/// 56 000 B, over the V100's 48 KiB but under the MI100's 64 KiB.
fn over_capacity(ctx: &SymbolicCtx) {
    let mut t = Tally::new();
    let mut m = ctx.member(0, member_policy(1, VL), &mut t);
    let n = 7000;
    let mut sm = m.scratch(n);
    m.vector_for(n, |j, lane| sm.write(lane, j, 0.0));
}

/// "Last lane wins" reducer: raw overwrite instead of an associative
/// join, so the result depends on the lane-join order.
fn order_dependent_reduce(ctx: &SymbolicCtx) {
    #[derive(Clone, Copy)]
    struct Last(f64);
    impl Reducer for Last {
        fn identity() -> Self {
            Last(f64::NAN)
        }
        fn join(&mut self, o: &Self) {
            // BUG: overwrite, not accumulate — order-dependent.
            if !o.0.is_nan() {
                self.0 = o.0;
            }
        }
    }
    impl ReducerCheck for Last {
        fn dist(&self, o: &Self) -> f64 {
            (self.0 - o.0).abs()
        }
        fn norm(&self) -> f64 {
            self.0.abs()
        }
    }
    let mut t = Tally::new();
    let mut m = ctx.member(0, member_policy(1, VL), &mut t);
    let _ = m.vector_reduce(VL, |j, acc: &mut Last| acc.0 = j as f64);
}

/// Affine index expression walks past the end of the buffer.
fn out_of_bounds_index(ctx: &SymbolicCtx) {
    let mut t = Tally::new();
    let mut m = ctx.member(0, member_policy(1, VL), &mut t);
    let mut sm = m.scratch(VL);
    // BUG: `lane + 2` reaches VL+1 ≥ len for the top lanes.
    m.vector_for(VL, |_, lane| sm.write(lane, lane + 2, 1.0));
}

/// Allocates twice what its (stale) declared budget says.
fn budget_drift(ctx: &SymbolicCtx) {
    let mut t = Tally::new();
    let mut m = ctx.member(0, member_policy(1, VL), &mut t);
    let mut sm = m.scratch(2 * VL);
    m.vector_for(VL, |j, lane| sm.write(lane, j, 1.0));
}

/// Launch configuration over every GPU's thread limit: 64 × 32 = 2048.
fn launch_overflow(ctx: &SymbolicCtx) {
    let mut t = Tally::new();
    let _m = ctx.member(0, member_policy(64, 32), &mut t);
}

/// Clean control: canonical strided staging with a barrier and a proper
/// sum reduction — must produce no finding.
fn clean_staging(ctx: &SymbolicCtx) {
    let mut t = Tally::new();
    let mut m = ctx.member(0, member_policy(1, VL), &mut t);
    let n = 3 * VL;
    let mut sm = m.scratch(n);
    m.vector_for(n, |j, lane| sm.write(lane, j, j as f64));
    m.barrier();
    let s = m.vector_reduce(n, |j, acc: &mut f64| *acc += sm.read(j % VL, j));
    assert!(s.is_finite());
}

/// The full corpus, defect entries first, clean control last.
pub fn corpus() -> Vec<CorpusKernel> {
    vec![
        CorpusKernel {
            name: "missing_barrier",
            expected: Some(VerifyRule::RaceReadWrite),
            declared_budget: None,
            run: missing_barrier,
        },
        CorpusKernel {
            name: "divergent_barrier",
            expected: Some(VerifyRule::BarrierDivergence),
            declared_budget: None,
            run: divergent_barrier,
        },
        CorpusKernel {
            name: "off_by_one_stride",
            expected: Some(VerifyRule::RaceWriteWrite),
            declared_budget: None,
            run: off_by_one_stride,
        },
        CorpusKernel {
            name: "over_capacity",
            expected: Some(VerifyRule::Capacity),
            declared_budget: None,
            run: over_capacity,
        },
        CorpusKernel {
            name: "order_dependent_reduce",
            expected: Some(VerifyRule::ReduceOrder),
            declared_budget: None,
            run: order_dependent_reduce,
        },
        CorpusKernel {
            name: "out_of_bounds_index",
            expected: Some(VerifyRule::OutOfBounds),
            declared_budget: None,
            run: out_of_bounds_index,
        },
        CorpusKernel {
            name: "budget_drift",
            expected: Some(VerifyRule::Budget),
            declared_budget: Some(VL),
            run: budget_drift,
        },
        CorpusKernel {
            name: "launch_overflow",
            expected: Some(VerifyRule::Launch),
            declared_budget: None,
            run: launch_overflow,
        },
        CorpusKernel {
            name: "clean_staging",
            expected: None,
            declared_budget: Some(3 * VL),
            run: clean_staging,
        },
    ]
}

/// Run one corpus kernel symbolically and analyze every block it logged.
pub fn run_corpus_kernel(k: &CorpusKernel) -> BlockFindings {
    let ctx = SymbolicCtx::new();
    (k.run)(&ctx);
    let mut all = BlockFindings::default();
    for log in ctx.take_logs() {
        let bf = analyze_block(&log, k.declared_budget);
        all.findings.extend(bf.findings);
        all.proofs.merge(&bf.proofs);
    }
    all
}

/// True when the analyzer's verdict matches the corpus entry's
/// expectation: the expected rule present for a defect, or an entirely
/// clean report for the control.
pub fn corpus_kernel_caught(k: &CorpusKernel) -> bool {
    let bf = run_corpus_kernel(k);
    match k.expected {
        Some(rule) => bf.findings.iter().any(|(r, _, _)| *r == rule),
        None => bf.findings.is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_all_defect_classes() {
        let ks = corpus();
        assert!(ks.iter().filter(|k| k.expected.is_some()).count() >= 6);
        let mut rules: Vec<_> = ks.iter().filter_map(|k| k.expected).collect();
        rules.sort();
        rules.dedup();
        assert!(
            rules.len() >= 6,
            "defect classes must be distinct: {rules:?}"
        );
    }

    #[test]
    fn every_corpus_kernel_gets_its_expected_verdict() {
        for k in corpus() {
            assert!(
                corpus_kernel_caught(&k),
                "{}: expected {:?}, got {:?}",
                k.name,
                k.expected,
                run_corpus_kernel(&k).findings
            );
        }
    }
}
