//! The static kernel verifier.
//!
//! Consumes the access logs a [`SymbolicCtx`] records (see
//! `landau_vgpu::symbolic`) and discharges, for every registered kernel,
//! the proof obligations of the virtual-GPU execution model:
//!
//! 1. **Race freedom** (`V-RACE-WW`, `V-RACE-RW`) — within every barrier
//!    epoch, every pair of distinct lanes touches disjoint scratch slots
//!    (write/write and write/read). The per-lane index sets are fitted to
//!    the affine family `{a·lane + b + stride·k}`; disjointness is then
//!    *proved* for all lane pairs by exact arithmetic-progression
//!    intersection — no index is sampled. When a set is not affine the
//!    analyzer widens to per-lane intervals (sound: disjoint intervals
//!    cannot race), and failing that falls back to exact enumeration of
//!    the logged sets. A truncated log is reported `V-UNPROVED`, never
//!    silently passed.
//! 2. **Barrier uniformity** (`V-BARRIER`) — no `barrier_if` whose
//!    predicate splits the lanes (some arrive, some do not): on hardware
//!    that deadlocks or desynchronizes the block.
//! 3. **Capacity** (`V-CAPACITY`, `V-LAUNCH`) — the block's cumulative
//!    scratch allocation fits the per-block shared memory, and
//!    `team_size × vector_length` fits the thread limit, of **every**
//!    [`GpuSpec`] the workspace models (`GpuSpec::all_named`).
//! 4. **Reduction determinism** (`V-REDUCE`) — re-joining each
//!    `vector_reduce` in permuted lane orders moves the result at most a
//!    rounding tolerance from the tree join.
//! 5. **Budget honesty** (`V-BUDGET`) — the observed allocation equals
//!    the slot count the kernel's registered budget closure declares
//!    (the same closure the capacity proof evaluates), and **bounds
//!    honesty** (`V-OOB`) — no access indexes past its buffer.
//!
//! The driver ([`verify_registry`]) sweeps each kernel over its
//! [`PolicyFamily`]: the vector length is enumerated over representative
//! values, and *within* each policy the lane dimension is universally
//! quantified — every lane pair, every interleaving.
//!
//! [`PolicyFamily`]: landau_core::PolicyFamily

use landau_core::registry::{KernelEntry, KernelRegistry, VerifyInput};
use landau_vgpu::checked::{Finding, RaceKind};
use landau_vgpu::kokkos::TeamPolicy;
use landau_vgpu::spec::GpuSpec;
use landau_vgpu::symbolic::{AccessKind, AffinePattern, BlockLog, SymbolicCtx, SYM_EVENT_CAP};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Verifier rule identifiers (stable codes for reports and the CI gate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum VerifyRule {
    /// Two lanes write one scratch slot in one epoch.
    RaceWriteWrite,
    /// A lane reads a slot another lane writes in one epoch.
    RaceReadWrite,
    /// A `barrier_if` predicate splits the lanes.
    BarrierDivergence,
    /// Cumulative scratch exceeds a spec's per-block shared memory.
    Capacity,
    /// `team_size × vector_length` exceeds a spec's thread limit.
    Launch,
    /// Permuting the reduction's lane-join order moves the result.
    ReduceOrder,
    /// A scratch access indexes past the end of its buffer.
    OutOfBounds,
    /// Observed allocation disagrees with the registered budget closure.
    Budget,
    /// The obligation could not be discharged (e.g. truncated log).
    Unproved,
}

impl VerifyRule {
    /// Short stable code for reports.
    pub fn code(self) -> &'static str {
        match self {
            VerifyRule::RaceWriteWrite => "V-RACE-WW",
            VerifyRule::RaceReadWrite => "V-RACE-RW",
            VerifyRule::BarrierDivergence => "V-BARRIER",
            VerifyRule::Capacity => "V-CAPACITY",
            VerifyRule::Launch => "V-LAUNCH",
            VerifyRule::ReduceOrder => "V-REDUCE",
            VerifyRule::OutOfBounds => "V-OOB",
            VerifyRule::Budget => "V-BUDGET",
            VerifyRule::Unproved => "V-UNPROVED",
        }
    }
}

impl fmt::Display for VerifyRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How a race-freedom obligation was discharged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProofMode {
    /// Affine fit + exact AP intersection over all lane pairs.
    Affine,
    /// Per-lane interval widening (sound over-approximation).
    Widened,
    /// Exact enumeration of the logged index sets.
    Enumerated,
}

impl ProofMode {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            ProofMode::Affine => "affine",
            ProofMode::Widened => "widened",
            ProofMode::Enumerated => "enumerated",
        }
    }
}

/// Tally of discharged race-freedom obligations by proof mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProofCounts {
    /// Proofs via the affine domain.
    pub affine: usize,
    /// Proofs via interval widening.
    pub widened: usize,
    /// Proofs via set enumeration.
    pub enumerated: usize,
}

impl ProofCounts {
    fn bump(&mut self, mode: ProofMode) {
        match mode {
            ProofMode::Affine => self.affine += 1,
            ProofMode::Widened => self.widened += 1,
            ProofMode::Enumerated => self.enumerated += 1,
        }
    }

    /// Total discharged obligations.
    pub fn total(&self) -> usize {
        self.affine + self.widened + self.enumerated
    }

    /// Fold another tally into this one.
    pub fn merge(&mut self, o: &ProofCounts) {
        self.affine += o.affine;
        self.widened += o.widened;
        self.enumerated += o.enumerated;
    }
}

/// One verifier finding, attributed to a kernel and launch configuration.
#[derive(Clone, Debug)]
pub struct VerifyFinding {
    /// The violated rule.
    pub rule: VerifyRule,
    /// Kernel name (registry key, or corpus kernel name).
    pub kernel: String,
    /// The vector length at which it was first observed.
    pub vector_length: usize,
    /// The device spec it applies to (capacity/launch rules only).
    pub spec: Option<&'static str>,
    /// The underlying detail, reusing the checked-mode finding type.
    pub finding: Finding,
    /// Times the (deduplicated) finding recurred across blocks/policies.
    pub occurrences: usize,
}

impl fmt::Display for VerifyFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [vl={}{}]: {} (x{})",
            self.rule.code(),
            self.kernel,
            self.vector_length,
            self.spec.map(|s| format!(", spec={s}")).unwrap_or_default(),
            self.finding,
            self.occurrences,
        )
    }
}

/// The verification outcome for one kernel over its whole policy family.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Vector lengths swept.
    pub vector_lengths: Vec<usize>,
    /// Block executions analyzed.
    pub blocks: usize,
    /// Discharged race-freedom obligations by proof mode.
    pub proofs: ProofCounts,
    /// Violations (empty for a clean kernel).
    pub findings: Vec<VerifyFinding>,
}

impl KernelReport {
    /// True when every obligation was discharged with no violation.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The full verifier report: one entry per kernel.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Per-kernel outcomes.
    pub kernels: Vec<KernelReport>,
}

impl VerifyReport {
    /// Total violations across all kernels.
    pub fn violations(&self) -> usize {
        self.kernels.iter().map(|k| k.findings.len()).sum()
    }

    /// Total discharged obligations across all kernels.
    pub fn proofs(&self) -> ProofCounts {
        let mut p = ProofCounts::default();
        for k in &self.kernels {
            p.merge(&k.proofs);
        }
        p
    }
}

// ---------------------------------------------------------------------------
// Per-block analysis.
// ---------------------------------------------------------------------------

/// Findings and proof tallies from one block log.
#[derive(Clone, Debug, Default)]
pub struct BlockFindings {
    /// `(rule, spec, detail)` triples; spec is set for capacity/launch.
    pub findings: Vec<(VerifyRule, Option<&'static str>, Finding)>,
    /// Discharged race-freedom obligations.
    pub proofs: ProofCounts,
}

/// Analyze one block's symbolic log against every proof obligation.
/// `declared_budget` is the slot count the kernel's registry entry
/// declares (None for corpus kernels without one).
pub fn analyze_block(log: &BlockLog, declared_budget: Option<usize>) -> BlockFindings {
    let mut out = BlockFindings::default();
    let lanes_n = log.policy.vector_length.max(1);

    // V-BUDGET: observed allocation must match the registered closure.
    let observed: usize = log.alloc_slots.iter().sum();
    if let Some(declared) = declared_budget {
        if observed != declared {
            out.findings.push((
                VerifyRule::Budget,
                None,
                Finding::BudgetMismatch {
                    league_rank: log.league_rank,
                    declared,
                    observed,
                },
            ));
        }
    }

    // V-CAPACITY / V-LAUNCH: against every modeled device.
    let bytes = (observed * 8) as u64;
    let threads = log.policy.threads_per_block();
    for (name, spec) in GpuSpec::all_named() {
        if threads > spec.max_threads_per_block {
            out.findings.push((
                VerifyRule::Launch,
                Some(name),
                Finding::LaunchOverflow {
                    threads,
                    max: spec.max_threads_per_block,
                },
            ));
        }
        if bytes > spec.shared_mem_per_block {
            out.findings.push((
                VerifyRule::Capacity,
                Some(name),
                Finding::ScratchOverflow {
                    league_rank: log.league_rank,
                    in_use: bytes,
                    capacity: spec.shared_mem_per_block,
                },
            ));
        }
    }

    // V-BARRIER: every probed conditional barrier must be lane-uniform.
    for p in &log.barriers {
        if !p.uniform() {
            out.findings.push((
                VerifyRule::BarrierDivergence,
                None,
                Finding::BarrierDivergence {
                    league_rank: log.league_rank,
                    arriving: p.arriving,
                    lanes: p.lanes,
                },
            ));
        }
    }

    // V-REDUCE: permuted lane-join orders must agree with the tree join.
    for p in &log.reduces {
        if p.dist > p.tol {
            out.findings.push((
                VerifyRule::ReduceOrder,
                None,
                Finding::NondeterministicReduce {
                    league_rank: log.league_rank,
                    dist: p.dist,
                    tol: p.tol,
                },
            ));
        }
    }

    // Per-buffer obligations: bounds, completeness, and race freedom.
    for buf in &log.bufs {
        for a in buf.oob.iter().take(4) {
            out.findings.push((
                VerifyRule::OutOfBounds,
                None,
                Finding::ScratchOutOfBounds {
                    league_rank: log.league_rank,
                    lane: a.lane,
                    idx: a.idx,
                    len: buf.len,
                },
            ));
        }
        if buf.truncated {
            out.findings.push((
                VerifyRule::Unproved,
                None,
                Finding::Unproved {
                    league_rank: log.league_rank,
                    reason: format!(
                        "scratch access log truncated at {SYM_EVENT_CAP} events; \
                         race freedom not provable from a partial log"
                    ),
                },
            ));
            continue;
        }

        // Group accesses by epoch into per-lane write/read index sets.
        // The lane axis must cover every lane the policy drives, even
        // lanes that never touched this buffer (empty sets).
        type LaneSets = Vec<BTreeSet<i64>>;
        let mut epochs: BTreeMap<u64, (LaneSets, LaneSets)> = BTreeMap::new();
        for e in &buf.events {
            let slot = epochs.entry(e.epoch).or_insert_with(|| {
                (
                    vec![BTreeSet::new(); lanes_n],
                    vec![BTreeSet::new(); lanes_n],
                )
            });
            let side = match e.kind {
                AccessKind::Write => &mut slot.0,
                AccessKind::Read => &mut slot.1,
            };
            if e.lane < lanes_n {
                side[e.lane].insert(e.idx as i64);
            }
        }
        for (writes, reads) in epochs.values() {
            match prove_disjoint(writes, writes, true) {
                Ok(mode) => out.proofs.bump(mode),
                Err((s, t, idx)) => out.findings.push((
                    VerifyRule::RaceWriteWrite,
                    None,
                    Finding::ScratchRace {
                        league_rank: log.league_rank,
                        idx: idx as usize,
                        first_lane: s,
                        second_lane: t,
                        kind: RaceKind::WriteWrite,
                    },
                )),
            }
            match prove_disjoint(writes, reads, false) {
                Ok(mode) => out.proofs.bump(mode),
                Err((s, t, idx)) => out.findings.push((
                    VerifyRule::RaceReadWrite,
                    None,
                    Finding::ScratchRace {
                        league_rank: log.league_rank,
                        idx: idx as usize,
                        first_lane: s,
                        second_lane: t,
                        kind: RaceKind::ReadWrite,
                    },
                )),
            }
        }
    }
    out
}

/// Prove that `a[s]` and `b[t]` are disjoint for every lane pair `s ≠ t`
/// (`same_group` treats the pair as unordered, for write/write). Returns
/// the proof mode used, or a witnessing `(s, t, idx)` conflict.
///
/// Proof chain: affine fit with exact AP intersection; per-lane interval
/// widening (sound: disjoint ranges cannot share an index); exact
/// enumeration of the logged sets (complete for the logged execution).
fn prove_disjoint(
    a: &[BTreeSet<i64>],
    b: &[BTreeSet<i64>],
    same_group: bool,
) -> Result<ProofMode, (usize, usize, i64)> {
    if a.iter().all(|s| s.is_empty()) || b.iter().all(|s| s.is_empty()) {
        return Ok(ProofMode::Affine); // vacuous
    }

    // 1. The affine domain: exact for the patterns staging loops produce.
    if let (Some(pa), Some(pb)) = (AffinePattern::fit(a), AffinePattern::fit(b)) {
        for s in 0..a.len() {
            let t0 = if same_group { s + 1 } else { 0 };
            for t in t0..b.len() {
                if s == t {
                    continue;
                }
                if let Some(idx) = pa.witness(s as i64, &pb, t as i64) {
                    return Err((s, t, idx));
                }
            }
        }
        return Ok(ProofMode::Affine);
    }

    // 2. Interval widening: sound, possibly imprecise.
    let ia: Vec<Option<(i64, i64)>> = a.iter().map(range_of).collect();
    let ib: Vec<Option<(i64, i64)>> = b.iter().map(range_of).collect();
    let mut widened = true;
    'w: for (s, ra) in ia.iter().enumerate() {
        let Some((alo, ahi)) = ra else { continue };
        let t0 = if same_group { s + 1 } else { 0 };
        for (t, rb) in ib.iter().enumerate().skip(t0) {
            if s == t {
                continue;
            }
            let Some((blo, bhi)) = rb else { continue };
            if alo <= bhi && blo <= ahi {
                widened = false;
                break 'w;
            }
        }
    }
    if widened {
        return Ok(ProofMode::Widened);
    }

    // 3. Exact enumeration of the logged sets.
    for (s, sa) in a.iter().enumerate() {
        let t0 = if same_group { s + 1 } else { 0 };
        for (t, sb) in b.iter().enumerate().skip(t0) {
            if s == t {
                continue;
            }
            if let Some(&idx) = sa.intersection(sb).next() {
                return Err((s, t, idx));
            }
        }
    }
    Ok(ProofMode::Enumerated)
}

fn range_of(s: &BTreeSet<i64>) -> Option<(i64, i64)> {
    Some((*s.first()?, *s.last()?))
}

// ---------------------------------------------------------------------------
// Registry driver.
// ---------------------------------------------------------------------------

/// Key a finding dedups under: rule + spec + the detail with block-identity
/// fields (league rank) erased, so one defect reported by many blocks or
/// policies collapses to one finding with an occurrence count.
fn canon(f: &Finding) -> Finding {
    let mut f = f.clone();
    match &mut f {
        Finding::ScratchRace { league_rank, .. }
        | Finding::ScratchOverflow { league_rank, .. }
        | Finding::ReduceDivergence { league_rank, .. }
        | Finding::BarrierDivergence { league_rank, .. }
        | Finding::NondeterministicReduce { league_rank, .. }
        | Finding::ScratchOutOfBounds { league_rank, .. }
        | Finding::BudgetMismatch { league_rank, .. }
        | Finding::Unproved { league_rank, .. } => *league_rank = 0,
        Finding::LaunchOverflow { .. } => {}
    }
    f
}

/// Fold one block's findings into the deduplicated kernel-level list.
fn fold_findings(
    acc: &mut BTreeMap<(VerifyRule, Option<&'static str>, String), VerifyFinding>,
    kernel: &str,
    vector_length: usize,
    block: BlockFindings,
) {
    for (rule, spec, finding) in block.findings {
        let key = (rule, spec, format!("{:?}", canon(&finding)));
        acc.entry(key)
            .and_modify(|f| f.occurrences += 1)
            .or_insert(VerifyFinding {
                rule,
                kernel: kernel.to_string(),
                vector_length,
                spec,
                finding,
                occurrences: 1,
            });
    }
}

/// Verify one registered kernel over its whole policy family.
pub fn verify_entry(entry: &KernelEntry, input: &VerifyInput) -> KernelReport {
    let dims = input.dims();
    let mut acc = BTreeMap::new();
    let mut proofs = ProofCounts::default();
    let mut blocks = 0;
    for &vl in entry.family.vector_lengths {
        let policy = TeamPolicy {
            league_size: dims.n / dims.nq.max(1),
            team_size: dims.nq,
            vector_length: vl,
        };
        let declared = (entry.budget)(&dims, &policy);
        let ctx = SymbolicCtx::new();
        (entry.run_symbolic)(input, vl, &ctx);
        let logs = ctx.take_logs();
        blocks += logs.len();
        for log in &logs {
            let bf = analyze_block(log, Some(declared));
            proofs.merge(&bf.proofs);
            fold_findings(&mut acc, entry.name, vl, bf);
        }
    }
    KernelReport {
        name: entry.name.to_string(),
        vector_lengths: entry.family.vector_lengths.to_vec(),
        blocks,
        proofs,
        findings: acc.into_values().collect(),
    }
}

/// Verify every kernel in the registry against the representative input.
pub fn verify_registry(reg: &KernelRegistry, input: &VerifyInput) -> VerifyReport {
    VerifyReport {
        kernels: reg
            .entries()
            .iter()
            .map(|e| verify_entry(e, input))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use landau_vgpu::counters::Tally;
    use landau_vgpu::kokkos::{Team, TeamFactory};

    fn policy(vl: usize) -> TeamPolicy {
        TeamPolicy {
            league_size: 1,
            team_size: 1,
            vector_length: vl,
        }
    }

    fn run_block(
        vl: usize,
        body: impl FnOnce(&mut landau_vgpu::SymbolicTeamMember<'_>),
    ) -> BlockLog {
        let ctx = SymbolicCtx::new();
        let mut t = Tally::new();
        {
            let mut m = ctx.member(0, policy(vl), &mut t);
            body(&mut m);
        }
        ctx.take_logs().remove(0)
    }

    fn rules(bf: &BlockFindings) -> Vec<VerifyRule> {
        bf.findings.iter().map(|(r, _, _)| *r).collect()
    }

    #[test]
    fn clean_staged_block_proves_affine() {
        let log = run_block(4, |m| {
            let mut sm = m.scratch(8);
            m.vector_for(8, |j, lane| sm.write(lane, j, j as f64));
            m.barrier();
            let _ = m.vector_reduce(8, |j, acc: &mut f64| *acc += sm.read(j % 4, j));
        });
        let bf = analyze_block(&log, Some(8));
        assert!(bf.findings.is_empty(), "{:?}", bf.findings);
        // Epoch 0 W/W + W/R, epoch 1 W/W + W/R (vacuous ones count too).
        assert!(bf.proofs.total() >= 2);
        assert!(bf.proofs.affine >= 1);
    }

    #[test]
    fn missing_barrier_is_a_read_write_race() {
        let log = run_block(4, |m| {
            let mut sm = m.scratch(8);
            m.vector_for(8, |j, lane| sm.write(lane, j, j as f64));
            // no barrier: lanes read slots other lanes wrote, same epoch
            let _ = m.vector_reduce(8, |j, acc: &mut f64| *acc += sm.read(j % 4, (j + 1) % 8));
        });
        let bf = analyze_block(&log, None);
        assert!(rules(&bf).contains(&VerifyRule::RaceReadWrite), "{bf:?}");
    }

    #[test]
    fn overlapping_stride_is_a_write_write_race_with_witness() {
        let log = run_block(4, |m| {
            let mut sm = m.scratch(16);
            for p in 0..4 {
                for k in 0..3 {
                    sm.write(p, 2 * p + k, 1.0);
                }
            }
        });
        let bf = analyze_block(&log, None);
        let race = bf
            .findings
            .iter()
            .find(|(r, _, _)| *r == VerifyRule::RaceWriteWrite)
            .expect("WW race");
        // The affine witness: lanes 0 and 1 collide at slot 2.
        match race.2 {
            Finding::ScratchRace {
                idx,
                first_lane,
                second_lane,
                ..
            } => {
                assert_eq!((first_lane, second_lane, idx), (0, 1, 2));
            }
            ref other => panic!("unexpected detail {other:?}"),
        }
    }

    #[test]
    fn divergent_barrier_capacity_oob_and_budget_flag() {
        let log = run_block(4, |m| {
            let mut sm = m.scratch(7000); // 56 KB: > V100's 48 KiB
            sm.write(0, 7005, 1.0); // out of bounds
            m.barrier_if(|lane| lane != 3); // divergent
        });
        let bf = analyze_block(&log, Some(16));
        let rs = rules(&bf);
        assert!(rs.contains(&VerifyRule::Capacity));
        assert!(rs.contains(&VerifyRule::BarrierDivergence));
        assert!(rs.contains(&VerifyRule::OutOfBounds));
        assert!(rs.contains(&VerifyRule::Budget));
        // Capacity names the spec it overflows (V100, not MI100's 64 KiB).
        let caps: Vec<_> = bf
            .findings
            .iter()
            .filter(|(r, _, _)| *r == VerifyRule::Capacity)
            .map(|(_, s, _)| s.unwrap())
            .collect();
        assert_eq!(caps, ["v100"]);
    }

    #[test]
    fn launch_overflow_names_both_gpu_specs() {
        let ctx = SymbolicCtx::new();
        let mut t = Tally::new();
        {
            let p = TeamPolicy {
                league_size: 1,
                team_size: 64,
                vector_length: 32, // 2048 threads > 1024
            };
            let _m = ctx.member(0, p, &mut t);
        }
        let log = ctx.take_logs().remove(0);
        let bf = analyze_block(&log, None);
        let specs: Vec<_> = bf
            .findings
            .iter()
            .filter(|(r, _, _)| *r == VerifyRule::Launch)
            .map(|(_, s, _)| s.unwrap())
            .collect();
        assert_eq!(specs, ["v100", "mi100"]);
    }

    #[test]
    fn widening_proves_disjoint_non_affine_sets() {
        // Lane 0 touches {0,1,4}, lane 1 touches {10,11,14}: not APs, but
        // the ranges are disjoint — widening discharges it.
        let a: Vec<BTreeSet<i64>> = vec![
            [0, 1, 4].into_iter().collect(),
            [10, 11, 14].into_iter().collect(),
        ];
        assert_eq!(prove_disjoint(&a, &a, true), Ok(ProofMode::Widened));
        // Interleaved but genuinely disjoint non-AP sets fall through to
        // enumeration.
        let b: Vec<BTreeSet<i64>> = vec![
            [0, 3, 4].into_iter().collect(),
            [1, 2, 7].into_iter().collect(),
        ];
        assert_eq!(prove_disjoint(&b, &b, true), Ok(ProofMode::Enumerated));
        // And a real conflict in non-AP sets is still found exactly.
        let c: Vec<BTreeSet<i64>> = vec![
            [0, 3, 4].into_iter().collect(),
            [1, 4, 9].into_iter().collect(),
        ];
        assert_eq!(prove_disjoint(&c, &c, true), Err((0, 1, 4)));
    }

    #[test]
    fn dedup_collapses_repeats_and_counts() {
        let mut acc = BTreeMap::new();
        let bf = || BlockFindings {
            findings: vec![(
                VerifyRule::Launch,
                Some("v100"),
                Finding::LaunchOverflow {
                    threads: 2048,
                    max: 1024,
                },
            )],
            proofs: ProofCounts::default(),
        };
        fold_findings(&mut acc, "k", 32, bf());
        fold_findings(&mut acc, "k", 64, bf());
        let fs: Vec<_> = acc.into_values().collect();
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].occurrences, 2);
        assert_eq!(fs[0].vector_length, 32);
    }
}
