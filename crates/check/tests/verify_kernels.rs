//! Integration tests for the static kernel verifier: the production
//! registry must prove clean, and every seeded corpus defect must be
//! flagged with its expected rule.

use landau_check::corpus::{corpus, run_corpus_kernel};
use landau_check::verify::{verify_registry, VerifyRule};
use landau_core::registry::{KernelRegistry, VerifyInput};

#[test]
fn production_kernels_prove_clean_over_the_policy_family() {
    let reg = KernelRegistry::standard();
    let input = VerifyInput::representative();
    let report = verify_registry(&reg, &input);
    assert!(report.kernels.len() >= 2, "both kokkos kernels verified");
    for k in &report.kernels {
        assert!(
            k.is_clean(),
            "{}: {} violation(s): {:?}",
            k.name,
            k.findings.len(),
            k.findings
        );
        assert!(k.blocks > 0, "{}: no blocks analyzed", k.name);
        assert!(
            k.vector_lengths.len() >= 5,
            "{}: family too small to call a sweep",
            k.name
        );
    }
    assert_eq!(report.violations(), 0);
    // The staged kernel's footprint is affine (strided staging writes +
    // broadcast reads), so the bulk of the obligations must be discharged
    // in the affine domain — symbolically over all lane pairs, not by
    // sampling.
    let proofs = report.proofs();
    assert!(proofs.total() > 0);
    assert!(proofs.affine > 0, "expected affine proofs, got {proofs:?}");
}

#[test]
fn every_seeded_defect_is_flagged_with_its_rule() {
    let ks = corpus();
    let defects: Vec<_> = ks.iter().filter(|k| k.expected.is_some()).collect();
    assert!(defects.len() >= 6, "corpus must seed at least 6 defects");
    for k in &defects {
        let bf = run_corpus_kernel(k);
        let want = k.expected.unwrap();
        assert!(
            bf.findings.iter().any(|(r, _, _)| *r == want),
            "{}: expected {} among {:?}",
            k.name,
            want.code(),
            bf.findings
        );
    }
}

#[test]
fn corpus_defect_classes_cover_the_issue_list() {
    // The six classes the verifier is specified against, at minimum.
    let need = [
        VerifyRule::RaceReadWrite,     // missing barrier
        VerifyRule::BarrierDivergence, // divergent barrier_if
        VerifyRule::RaceWriteWrite,    // off-by-one lane stride overlap
        VerifyRule::Capacity,          // over-capacity on smallest GpuSpec
        VerifyRule::ReduceOrder,       // order-dependent raw accumulation
        VerifyRule::OutOfBounds,       // out-of-bounds affine index
    ];
    let have: Vec<_> = corpus().iter().filter_map(|k| k.expected).collect();
    for rule in need {
        assert!(
            have.contains(&rule),
            "corpus missing a {} defect",
            rule.code()
        );
    }
}

#[test]
fn clean_control_stays_clean() {
    let ks = corpus();
    let control = ks
        .iter()
        .find(|k| k.expected.is_none())
        .expect("corpus has a clean control");
    let bf = run_corpus_kernel(control);
    assert!(bf.findings.is_empty(), "{:?}", bf.findings);
    assert!(bf.proofs.total() > 0, "control must discharge obligations");
}
