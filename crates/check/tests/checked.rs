//! Acceptance tests for the checked execution mode: each of the three
//! seeded defect classes (un-barriered lane race, coloring violation,
//! scratch over-allocation) is caught, while the real operator kernels and
//! assembly paths run clean under the checker.

use landau_core::ipdata::IpData;
use landau_core::kernels::{
    assemble_colored_checked, assemble_setvalues, inner_integral_kokkos_model,
    inner_integral_kokkos_with,
};
use landau_core::species::{Species, SpeciesList};
use landau_fem::assemble::csr_pattern;
use landau_fem::coloring::{color_batches, color_elements};
use landau_fem::FemSpace;
use landau_mesh::presets::uniform_mesh;
use landau_vgpu::kokkos::{Team, TeamFactory, TeamPolicy};
use landau_vgpu::{CheckCtx, Finding, GpuSpec, Tally};

fn setup() -> (FemSpace, SpeciesList, IpData) {
    let space = FemSpace::new(uniform_mesh(3.0, 1), 2);
    let sl = SpeciesList::new(vec![
        Species::electron(),
        Species {
            name: "i+".into(),
            mass: 2.0,
            charge: 1.0,
            density: 0.5,
            temperature: 2.0,
        },
    ]);
    let mut ip = IpData::new(&space, &sl);
    let nd = space.n_dofs;
    let mut state = vec![0.0; 2 * nd];
    for (s, sp) in sl.list.iter().enumerate() {
        let v = space.interpolate(|r, z| sp.maxwellian(r, z, 0.0) + 0.01);
        state[s * nd..(s + 1) * nd].copy_from_slice(&v);
    }
    ip.pack(&space, &state);
    (space, sl, ip)
}

fn policy(vl: usize) -> TeamPolicy {
    TeamPolicy {
        league_size: 1,
        team_size: 1,
        vector_length: vl,
    }
}

/// Seeded defect 1: lanes cooperatively stage scratch, then read across
/// lanes *without* a barrier — the classic shared-memory race. Strict mode
/// aborts at the first conflicting access.
#[test]
#[should_panic(expected = "write-write")]
fn seeded_lane_race_is_caught() {
    let ctx = CheckCtx::strict(GpuSpec::v100());
    let mut t = Tally::new();
    let mut m = ctx.member(0, policy(8), &mut t);
    let mut sm = m.scratch(4);
    // Defect: the index map folds 8 lanes onto 4 cells in one epoch.
    m.vector_for(8, |j, lane| sm.write(lane, j % 4, j as f64));
}

/// The same race in collecting mode: the defect is reported (not panicked)
/// with the precise cell and lane pair, so a batch run can list every
/// conflict at once.
#[test]
fn seeded_lane_race_is_reported_in_collecting_mode() {
    let ctx = CheckCtx::new(GpuSpec::v100());
    let mut t = Tally::new();
    let mut m = ctx.member(0, policy(4), &mut t);
    let mut sm = m.scratch(2);
    m.vector_for(4, |j, lane| sm.write(lane, j % 2, 1.0));
    let findings = ctx.findings();
    assert!(!findings.is_empty());
    assert!(findings
        .iter()
        .all(|f| matches!(f, Finding::ScratchRace { .. })));
}

/// Seeded defect 2: a deliberately wrong coloring (all elements in one
/// color batch) violates the disjoint-scatter contract on any mesh with
/// shared dofs, and the ownership map refuses it.
#[test]
fn seeded_coloring_violation_is_caught() {
    let (space, sl, ip) = setup();
    let (coeffs, _) = landau_core::kernels::inner_integral_cpu(&ip, &sl);
    let (ce, _) = landau_core::kernels::landau_element_matrices(&space, &sl, &ip, &coeffs);
    let pat = csr_pattern(&space);
    let mut mats = vec![pat.clone(), pat.clone()];
    // Defect: one batch containing every element — adjacent elements share
    // dofs, so their scatters overlap.
    let bogus = vec![(0..space.n_elements()).collect::<Vec<_>>()];
    let err = assemble_colored_checked(&space, 2, &ce, &mut mats, &bogus)
        .expect_err("single-color batch must violate the scatter contract");
    assert!(err.first_elem != err.second_elem);
    assert!(err.slot < pat.vals.len());
}

/// Seeded defect 3: cumulative scratch allocation past the device's
/// per-block shared memory is a hard error under a strict context.
#[test]
#[should_panic(expected = "scratch over-allocation")]
fn seeded_scratch_over_allocation_is_caught() {
    let tiny = GpuSpec {
        shared_mem_per_block: 256, // 32 f64 slots
        max_threads_per_block: 1024,
        warp_size: 32,
    };
    let ctx = CheckCtx::strict(tiny);
    let mut t = Tally::new();
    let mut m = ctx.member(0, policy(4), &mut t);
    let _a = m.scratch(16); // 128 B, fits
    let _b = m.scratch(32); // cumulative 384 B > 256 B
}

/// The real inner-integral kernel, run under the checker across the whole
/// league: zero findings, and bitwise-identical coefficients to the plain
/// (unchecked) execution.
#[test]
fn operator_kernel_runs_clean_under_checker() {
    let (_space, sl, ip) = setup();
    for vl in [1usize, 8, 16] {
        let ctx = CheckCtx::new(GpuSpec::v100());
        let (checked, t) = inner_integral_kokkos_with(&ip, &sl, vl, &ctx);
        ctx.assert_clean();
        let (plain, _) = inner_integral_kokkos_model(&ip, &sl, vl);
        assert_eq!(checked.max_rel_diff(&plain), 0.0, "vl={vl}");
        assert!(t.flops > 0);
    }
}

/// The real graph coloring satisfies the scatter contract: checked colored
/// assembly succeeds and reproduces the MatSetValues reference values.
#[test]
fn real_coloring_passes_checked_assembly() {
    let (space, sl, ip) = setup();
    let (coeffs, _) = landau_core::kernels::inner_integral_cpu(&ip, &sl);
    let (ce, _) = landau_core::kernels::landau_element_matrices(&space, &sl, &ip, &coeffs);
    let (colors, ncolors) = color_elements(&space);
    let batches = color_batches(&colors, ncolors);
    let pat = csr_pattern(&space);
    let mut reference = vec![pat.clone(), pat.clone()];
    assemble_setvalues(&space, 2, &ce, &mut reference);
    let mut checked = vec![pat.clone(), pat.clone()];
    let t = assemble_colored_checked(&space, 2, &ce, &mut checked, &batches)
        .expect("the real coloring must satisfy the scatter contract");
    assert!(t.atomics > 0);
    for s in 0..2 {
        for (v, r) in checked[s].vals.iter().zip(&reference[s].vals) {
            assert!((v - r).abs() < 1e-12 * (1.0 + r.abs()));
        }
    }
}
