//! Cross-crate integration tests: the full mesh → FEM → kernels → solver
//! pipeline, exercised through the facade crate.

use landau::core::operator::{AssemblyPath, Backend, LandauOperator};
use landau::core::solver::{ThetaMethod, TimeIntegrator};
use landau::core::species::{Species, SpeciesList};
use landau::fem::FemSpace;
use landau::mesh::presets::{MeshSpec, RefineShell};

fn small_space() -> FemSpace {
    let spec = MeshSpec {
        domain_radius: 4.0,
        base_level: 1,
        shells: vec![RefineShell {
            radius: 2.0,
            max_cell_size: 0.5,
        }],
        tail_box: None,
    };
    FemSpace::new(spec.build(), 3)
}

fn plasma() -> SpeciesList {
    SpeciesList::new(vec![
        Species::electron(),
        Species {
            name: "i+".into(),
            mass: 2.0,
            charge: 1.0,
            density: 1.0,
            temperature: 0.6,
        },
    ])
}

/// The three kernel back-ends and both assembly paths must produce the same
/// trajectory through a full implicit step.
#[test]
fn backends_agree_through_time_steps() {
    let mut results = Vec::new();
    for (backend, assembly) in [
        (Backend::Cpu, AssemblyPath::SetValues),
        (Backend::CudaModel, AssemblyPath::Atomic),
        (Backend::KokkosModel, AssemblyPath::SetValues),
    ] {
        let mut op = LandauOperator::new(small_space(), plasma(), backend);
        op.assembly = assembly;
        let mut ti = TimeIntegrator::new(op, ThetaMethod::BackwardEuler);
        let mut state = ti.op.initial_state();
        for _ in 0..2 {
            let s = ti.step(&mut state, 0.3, 0.02, None);
            assert!(s.converged);
        }
        results.push(state);
    }
    let scale = results[0].iter().fold(0.0f64, |m, v| m.max(v.abs()));
    for other in &results[1..] {
        let d = results[0]
            .iter()
            .zip(other)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(d < 1e-9 * scale, "backend trajectories diverged: {d}");
    }
}

/// Conservation through a long relaxation, across crates: density exact,
/// momentum/energy at solver tolerance, entropy-like monotone equilibration.
#[test]
fn long_relaxation_conserves_and_equilibrates() {
    let op = LandauOperator::new(small_space(), plasma(), Backend::Cpu);
    let mut ti = TimeIntegrator::new(op, ThetaMethod::BackwardEuler);
    ti.rtol = 1e-8;
    ti.max_newton = 100;
    let mut state = ti.op.initial_state();
    let n0 = ti.moments.density(&state, 0);
    let e0 = ti.moments.total_energy(&state);
    let mut gap_prev = f64::INFINITY;
    for k in 0..6 {
        let s = ti.step(&mut state, 0.6, 0.0, None);
        assert!(s.converged, "step {k}");
        let gap = ti.moments.temperature(&state, 0) - ti.moments.temperature(&state, 1);
        assert!(gap > 0.0, "no overshoot through equilibrium");
        assert!(gap < gap_prev, "temperature gap must shrink monotonically");
        gap_prev = gap;
    }
    assert!((ti.moments.density(&state, 0) - n0).abs() < 1e-10);
    assert!(((ti.moments.total_energy(&state) - e0) / e0).abs() < 1e-6);
}

/// The distribution stays positive (no oscillation blow-up) through the
/// relaxation on the bulk of the domain.
#[test]
fn distribution_stays_physical() {
    let op = LandauOperator::new(small_space(), plasma(), Backend::Cpu);
    let mut ti = TimeIntegrator::new(op, ThetaMethod::BackwardEuler);
    let mut state = ti.op.initial_state();
    for _ in 0..3 {
        ti.step(&mut state, 0.5, 0.0, None);
    }
    // Sample f_e on a grid: the bulk must be positive; tiny negative
    // undershoots are only tolerable far in the tail.
    let space = &ti.op.space;
    let fmax = state[..ti.op.n()].iter().fold(0.0f64, |m, v| m.max(*v));
    for i in 0..20 {
        for j in 0..20 {
            let r = 3.9 * (i as f64 + 0.5) / 20.0;
            let z = -3.9 + 7.8 * (j as f64 + 0.5) / 20.0;
            let f = space.eval(&state[..ti.op.n()], r, z).unwrap();
            if (r * r + z * z).sqrt() < 2.0 {
                assert!(f > -1e-6 * fmax, "f({r},{z}) = {f}");
            }
        }
    }
}

/// The device counters give a physically sensible roofline picture
/// end-to-end (Table IV's qualitative claim).
#[test]
fn roofline_shape_is_reproduced() {
    use landau::hwsim::roofline::{roofline_report, KernelModel};
    use landau::vgpu::DeviceSpec;
    let mut op = LandauOperator::new(small_space(), plasma(), Backend::CudaModel);
    op.assembly = AssemblyPath::Atomic;
    let state = op.initial_state();
    let _ = op.assemble(&state, 0.0);
    let _ = op.assemble_shifted_mass(1.0);
    let dev = DeviceSpec::v100();
    let jac = roofline_report(
        &op.device.kernel_stats("landau_jacobian"),
        &KernelModel::jacobian(),
        &dev,
    );
    let mass = roofline_report(&op.device.kernel_stats("mass"), &KernelModel::mass(), &dev);
    assert!(jac.compute_bound, "Jacobian must be compute bound");
    assert!(!mass.compute_bound, "mass must be memory bound");
    assert!(
        jac.ai > 4.0 * mass.ai,
        "AI ordering: {} vs {}",
        jac.ai,
        mass.ai
    );
}
