//! End-to-end physics: the quench pipeline through the facade crate.

use landau::core::operator::Backend;
use landau::quench::{spitzer_eta, QuenchConfig, QuenchDriver};

/// A miniature quench run must show the Figure-5 dynamics: density ramp,
/// thermal collapse, field spike.
#[test]
fn miniature_quench() {
    let cfg = QuenchConfig {
        ion_mass: 16.0,
        cells_per_vt: 0.7,
        k_outer: 2.0,
        domain: 4.0,
        t_cold: 0.2,
        mass_factor: 2.0,
        pulse_duration: 2.0,
        dt: 0.25,
        max_equil_steps: 10,
        quench_steps: 10,
        backend: Backend::Cpu,
        ..Default::default()
    };
    let mut d = QuenchDriver::new(cfg);
    d.run().expect("quench run failed");
    assert!(d.stats.converged);
    let pre = d.samples.iter().rfind(|s| !s.quenching).unwrap();
    let last = d.samples.last().unwrap();
    assert!(last.n_e > 2.0, "mass was injected: {}", last.n_e);
    assert!(
        last.t_e < 0.8 * pre.t_e,
        "T_e collapsed: {} → {}",
        pre.t_e,
        last.t_e
    );
    let e_max = d.samples.iter().map(|s| s.e).fold(0.0f64, f64::max);
    assert!(e_max > pre.e, "E rose during quench");
}

/// Spitzer η grows with Z but sub-linearly (the Z F(Z) structure).
#[test]
fn spitzer_z_structure() {
    let e1 = spitzer_eta(1.0, 1.0);
    let e4 = spitzer_eta(4.0, 1.0);
    let e128 = spitzer_eta(128.0, 1.0);
    assert!(e4 > 1.5 * e1 && e4 < 4.0 * e1);
    // High-Z Lorentz limit: η/Z → const·0.2949.
    assert!((e128 / 128.0 / (e1 / 0.5128514)) < 0.65);
}
